package transformer

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// DefaultCtrlTimeout bounds how long the coordinator waits for a worker's
// result frame. It must comfortably exceed the workers' ring receive
// timeout, so a mid-ring fault surfaces as the workers' own link/timeout
// errors (attributable to a rank pair) rather than a bare control-plane
// deadline.
const DefaultCtrlTimeout = 2 * comm.DefaultRecvTimeout

// ConnectConfig parameterizes a coordinator's connection to a worker mesh.
type ConnectConfig struct {
	// Addrs lists every worker rank's control address; Addrs[i] must answer
	// as rank i. World size is len(Addrs).
	Addrs []string
	// KVCapacity must match the workers' -kv-capacity flag; it participates
	// in the rendezvous config digest.
	KVCapacity int
	// Epoch is the cluster incarnation to dial at (0 = 1). If a worker
	// answers from a newer epoch — this coordinator restarted while the
	// workers kept rejoining — the dial adopts the observed epoch and
	// retries, so a rolling coordinator restart converges without flags.
	Epoch uint64
	// DialTimeout bounds the control-plane rendezvous (workers may still be
	// meshing when the coordinator starts). Default 15s.
	DialTimeout time.Duration
	// RecvTimeout is the workers' ring receive deadline (their
	// -recv-timeout flag). It does not configure the workers — it informs
	// the default CtrlTimeout, which must exceed the ring deadline so a
	// mid-ring stall surfaces as the workers' own rank-attributed errors
	// rather than a bare control-plane deadline.
	RecvTimeout time.Duration
	// CtrlTimeout bounds each per-command worker reply. Default: twice
	// RecvTimeout when set, else DefaultCtrlTimeout.
	CtrlTimeout time.Duration
	// HeartbeatEvery / HeartbeatMisses mirror the workers' liveness settings
	// on the control plane: workers heartbeat their control connection every
	// HeartbeatEvery, and the coordinator's readers declare a worker dead
	// after HeartbeatMisses silent periods. Zero values take the transport
	// defaults (500ms x 3); HeartbeatMisses < 0 disables the idle deadline
	// (a dead worker then surfaces only when its connection drops).
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// Trace, when non-nil, is the coordinator's cumulative trace store;
	// Cluster.SyncTrace drains every worker's staged spans and series deltas
	// into it. Nil disables coordinator-side trace collection (workers still
	// stage, but nothing drains them).
	Trace *trace.Recorder
}

// ConfigSum digests everything two processes must agree on before forming a
// cluster: the full transformer configuration (weights seed included), the
// world size, the KV capacity, and the wire-protocol version. Workers and
// coordinator exchange it in the Hello handshake; a mismatch fails
// rendezvous with a named cause instead of surfacing later as skewed
// logits.
func ConfigSum(cfg Config, world, kvCapacity int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v|world=%d|kv=%d|wire=%d", cfg, world, kvCapacity, wire.Version)
	return h.Sum64()
}

// remotePlane is the coordinator's control plane: one framed connection per
// worker rank, carrying command/result frames in lockstep with the
// cluster's (single-threaded) command stream.
//
// Replies are matched to commands purely by stream order, so the plane is
// sound only while every command gets exactly one reply. Any broadcast
// failure — a send error (some workers may have received the command,
// others not) or a reply timeout (the late reply would alias the next
// command's) — therefore poisons the plane permanently: every subsequent
// command fails fast with the original cause instead of silently reading
// desynchronized or divergent rank state. Recovery happens by rebuilding a
// fresh plane on a new epoch (Cluster.Rebuild), never by reviving this one.
//
// Each control connection has a dedicated reader goroutine, for two
// reasons: a dead worker is detected the moment its connection drops (even
// while the coordinator is idle between commands), and workers may send
// unsolicited FailureNote frames — filtered here, like heartbeats in the
// data plane — without ever aliasing a command's reply.
type remotePlane struct {
	ctrls   []*transport.Ctrl
	replies []chan any      // reader -> bcast reply handoff, per rank
	down    []chan struct{} // closed by the reader on exit; downErr[r] is set first
	downErr []error
	events  chan transport.FailureEvent

	readers    sync.WaitGroup
	closed     chan struct{} // closed at hangup; unblocks reader handoff
	hangupOnce sync.Once

	timeout time.Duration
	idle    time.Duration // reader idle deadline (heartbeat miss window)
	dead    error
}

// connectPlane dials every worker's control address at the given epoch. On
// an EpochError (the workers are ahead of us) it reports the observed epoch
// so the caller can adopt it and retry.
func connectPlane(w *Weights, cfg ConnectConfig, epoch uint64) (*remotePlane, error) {
	n := len(cfg.Addrs)
	hello := &wire.Hello{
		Magic: wire.Magic, Version: wire.Version, World: n, Rank: -1,
		ConfigSum: ConfigSum(w.Cfg, n, cfg.KVCapacity),
		Epoch:     epoch,
	}
	every := cfg.HeartbeatEvery
	if every <= 0 {
		every = transport.DefaultHeartbeatEvery
	}
	misses := cfg.HeartbeatMisses
	if misses == 0 {
		misses = transport.DefaultHeartbeatMisses
	}
	if misses == 1 {
		// A one-period window races the sender's ticker and flaps on healthy
		// links — same rule TCPConfig enforces.
		return nil, errors.New("transformer: heartbeat miss threshold must be >= 2 (or < 0 to disable)")
	}
	var idle time.Duration
	if misses > 0 {
		idle = time.Duration(misses) * every
	}
	plane := &remotePlane{
		timeout: cfg.CtrlTimeout,
		idle:    idle,
		closed:  make(chan struct{}),
		events:  make(chan transport.FailureEvent, n+2),
	}
	for i, addr := range cfg.Addrs {
		ctrl, err := transport.DialCtrl(addr, hello, i, cfg.DialTimeout)
		if err != nil {
			plane.hangup()
			return nil, fmt.Errorf("transformer: connecting rank %d: %w", i, err)
		}
		plane.ctrls = append(plane.ctrls, ctrl)
	}
	plane.replies = make([]chan any, n)
	plane.down = make([]chan struct{}, n)
	plane.downErr = make([]error, n)
	for r := range plane.ctrls {
		plane.replies[r] = make(chan any)
		plane.down[r] = make(chan struct{})
		plane.readers.Add(1)
		go plane.readLoop(r)
	}
	return plane, nil
}

// dialPlane runs connectPlane with epoch adoption: if the workers answer
// from a newer epoch (this coordinator is the one that restarted), redial at
// the observed epoch. Returns the plane and the epoch it actually joined.
func dialPlane(w *Weights, cfg ConnectConfig, epoch uint64) (*remotePlane, uint64, error) {
	for tries := 0; ; tries++ {
		plane, err := connectPlane(w, cfg, epoch)
		var eErr *transport.EpochError
		if err != nil && errors.As(err, &eErr) && tries < 4 {
			epoch = eErr.Observed
			continue
		}
		return plane, epoch, err
	}
}

// ConnectCluster dials a worker mesh and returns a distributed Cluster: the
// coordinator hosts no ranks, drives the workers' engines through command
// frames, and assembles their results. The weights are the coordinator's
// replica — workers built their own from the same configuration, and the
// handshake digest guarantees they match.
func ConnectCluster(w *Weights, cfg ConnectConfig) (*Cluster, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("transformer: distributed cluster needs worker addresses")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = transport.DefaultRendezvousTimeout
	}
	if cfg.CtrlTimeout <= 0 {
		if cfg.RecvTimeout > 0 {
			cfg.CtrlTimeout = 2 * cfg.RecvTimeout
		} else {
			cfg.CtrlTimeout = DefaultCtrlTimeout
		}
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	plane, epoch, err := dialPlane(w, cfg, cfg.Epoch)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		W:           w,
		n:           len(cfg.Addrs),
		remote:      plane,
		connCfg:     cfg,
		epoch:       epoch,
		kvCapacity:  cfg.KVCapacity,
		rec:         cfg.Trace,
		seqLens:     make(map[int]int),
		decodeSteps: make(map[int]int),
		events:      make(chan transport.FailureEvent, len(cfg.Addrs)+2),
	}
	c.setEventSource(plane.events, epoch)
	return c, nil
}

// readLoop drains one worker's control connection: replies are handed to the
// in-flight bcast, FailureNotes become failure events, and a dead connection
// downs the rank with its cause.
func (p *remotePlane) readLoop(r int) {
	defer p.readers.Done()
	for {
		// The idle deadline is the heartbeat miss window: workers heartbeat
		// their control connection, so a silent one is wedged or dead, not
		// merely quiet between commands.
		v, err := p.ctrls[r].Recv(p.idle)
		if err != nil {
			var ne net.Error
			if p.idle > 0 && errors.As(err, &ne) && ne.Timeout() {
				err = fmt.Errorf("worker rank %d silent past the heartbeat window (%v): %w", r, p.idle, err)
			}
			p.downErr[r] = err
			close(p.down[r])
			p.pushEvent(transport.FailureEvent{Peer: r, Cause: err})
			return
		}
		if _, ok := v.(*wire.Heartbeat); ok {
			continue // liveness only; resets the read deadline above
		}
		if note, ok := v.(*wire.FailureNote); ok {
			p.pushEvent(transport.FailureEvent{Peer: note.Rank,
				Cause: fmt.Errorf("worker reported: %s", note.Cause)})
			continue
		}
		select {
		case p.replies[r] <- v:
		case <-p.closed:
			return
		}
	}
}

// pushEvent publishes without blocking; the plane may be torn down while a
// reader still holds an event, so a full or abandoned channel drops it (the
// consumer already has failure signals pending). Send-after-close is
// impossible by ordering, not by a guard: pushEvent is called only from
// readLoop goroutines, and hangup closes p.events only after
// p.readers.Wait() — keep it that way (or switch to a closed-guarded sink)
// if another publisher is ever added.
func (p *remotePlane) pushEvent(ev transport.FailureEvent) {
	select {
	case p.events <- ev:
	default:
	}
}

func (p *remotePlane) hangup() {
	p.hangupOnce.Do(func() {
		close(p.closed)
		for _, c := range p.ctrls {
			if c != nil {
				c.Close()
			}
		}
		p.readers.Wait()
		close(p.events)
	})
}

// recvReply waits for rank r's next reply frame.
func (p *remotePlane) recvReply(r int) (any, error) {
	timer := time.NewTimer(p.timeout)
	defer timer.Stop()
	select {
	case v := <-p.replies[r]:
		return v, nil
	case <-p.down[r]:
		return nil, p.downErr[r]
	case <-timer.C:
		return nil, fmt.Errorf("timed out after %v", p.timeout)
	}
}

// bcast sends cmd to every worker, then collects one reply per worker.
// Sends complete before any reply is awaited: a ring pass needs all ranks
// running, so a worker must never wait on a peer whose command is still
// queued behind our slow reply read.
func (p *remotePlane) bcast(cmd any) ([]any, error) {
	if p.dead != nil {
		return nil, fmt.Errorf("transformer: control plane is down: %w", p.dead)
	}
	for r, c := range p.ctrls {
		if err := c.Send(cmd); err != nil {
			return nil, p.poison(fmt.Errorf("transformer: control send to rank %d: %w", r, err))
		}
	}
	out := make([]any, len(p.ctrls))
	for r := range p.ctrls {
		v, err := p.recvReply(r)
		if err != nil {
			return nil, p.poison(fmt.Errorf("transformer: control reply from rank %d: %w", r, err))
		}
		out[r] = v
	}
	return out, nil
}

// poison marks the plane dead with its first fatal error and hangs up, so a
// stale in-flight reply can never be read as a later command's result.
func (p *remotePlane) poison(err error) error {
	if p.dead == nil {
		p.dead = err
		p.hangup()
	}
	return err
}

// firstErr surfaces the lowest-ranked worker error, matching the in-process
// RunCollect convention.
func firstErr(replies []any) error {
	for r, v := range replies {
		if msg := wire.ErrOf(v); msg != "" {
			return fmt.Errorf("rank %d: %s", r, msg)
		}
	}
	return nil
}

func (p *remotePlane) prefill(cmd *wire.PrefillCmd) ([]*tensor.Tensor, error) {
	replies, err := p.bcast(cmd)
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.PrefillResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered prefill with %T", r, v)
		}
		out[r] = res.Logits
	}
	return out, nil
}

func (p *remotePlane) decode(cmd *wire.DecodeCmd) ([][]float32, error) {
	replies, err := p.bcast(cmd)
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	out := make([][]float32, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.DecodeResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered decode with %T", r, v)
		}
		out[r] = res.Flat
	}
	return out, nil
}

// drop is fire-and-collect: eviction failures have no caller-visible error
// path (Drop returns nothing). A partial broadcast could leave the
// sequence evicted on some ranks and resident on others — which is why
// bcast poisons the plane on any failure: the skewed state can never be
// reached again, and the next prefill or decode fails with the cause.
func (p *remotePlane) drop(seq int) {
	replies, err := p.bcast(&wire.DropCmd{Seq: seq})
	if err != nil {
		return
	}
	_ = firstErr(replies)
}

func (p *remotePlane) detach(id uint64, seq, upTo int) ([][]int, error) {
	replies, err := p.bcast(&wire.DetachCmd{Seq: seq, UpTo: upTo, ID: id})
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	perRank := make([][]int, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.DetachResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered detach with %T", r, v)
		}
		perRank[r] = res.PerLayer
	}
	return perRank, nil
}

func (p *remotePlane) adopt(seq int, id uint64) error {
	replies, err := p.bcast(&wire.AdoptCmd{Seq: seq, ID: id})
	if err != nil {
		return err
	}
	return firstErr(replies)
}

func (p *remotePlane) releasePrefix(id uint64) {
	replies, err := p.bcast(&wire.ReleasePrefixCmd{ID: id})
	if err != nil {
		return
	}
	_ = firstErr(replies)
}

func (p *remotePlane) capInputs(seqIDs []int) (*capSnapshot, error) {
	replies, err := p.bcast(&wire.CapQueryCmd{Seqs: seqIDs})
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	snap := &capSnapshot{avail: make([][]int, len(replies)), overhead: make([][][]int, len(replies))}
	for r, v := range replies {
		res, ok := v.(*wire.CapResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered capacity query with %T", r, v)
		}
		snap.avail[r] = res.Avail
		snap.overhead[r] = res.Overhead
	}
	return snap, nil
}

// traceDrain collects every worker's staged trace delta. Like any bcast, a
// failed round trip poisons the plane — trace scrapes share the command
// stream's lockstep reply matching and cannot be retried out of band.
func (p *remotePlane) traceDrain() ([]*wire.TraceResult, error) {
	replies, err := p.bcast(&wire.TraceCmd{})
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	out := make([]*wire.TraceResult, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.TraceResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered trace drain with %T", r, v)
		}
		out[r] = res
	}
	return out, nil
}

func (p *remotePlane) telemetry() (Telemetry, error) {
	replies, err := p.bcast(&wire.StatsCmd{})
	if err != nil {
		return Telemetry{}, err
	}
	if err := firstErr(replies); err != nil {
		return Telemetry{}, err
	}
	tel := Telemetry{
		Transport: "tcp",
		RankKV:    make([]int, len(replies)),
		Comm:      comm.Stats{Messages: map[comm.Kind]int64{}, Bytes: map[comm.Kind]float64{}},
	}
	// Each worker reports its own rank's send-side accounting and both
	// directions of its wire links; keep each link's stats from its sender's
	// snapshot so directions are never double-counted.
	chaos := map[string]int64{}
	for r, v := range replies {
		res, ok := v.(*wire.StatsResult)
		if !ok {
			return Telemetry{}, fmt.Errorf("transformer: rank %d answered stats with %T", r, v)
		}
		tel.RankKV[r] = res.CacheTokens
		if len(res.Assembly) == 5 {
			tel.Assembly.Rebuilds += res.Assembly[0]
			tel.Assembly.RebuildRows += res.Assembly[1]
			tel.Assembly.Appends += res.Assembly[2]
			tel.Assembly.AppendedRows += res.Assembly[3]
			tel.Assembly.Reuses += res.Assembly[4]
		}
		for i, k := range res.Kinds {
			tel.Comm.Messages[comm.Kind(k)] += res.Msgs[i]
			tel.Comm.Bytes[comm.Kind(k)] += res.Bytes[i]
		}
		for _, l := range res.Links {
			if l.Src == r {
				tel.Links = append(tel.Links, l)
			}
		}
		tel.IntegrityChecked += res.IntegrityChecked
		tel.IntegrityRejected += res.IntegrityRejected
		for i, k := range res.ChaosKinds {
			chaos[k] += res.ChaosCounts[i]
		}
	}
	// The coordinator decodes frames too (every worker reply crosses its
	// CRC check); fold its process-local counters in.
	checked, rejected := wire.IntegrityStats()
	tel.IntegrityChecked += checked
	tel.IntegrityRejected += rejected
	tel.ChaosKinds, tel.ChaosCounts = flattenChaos(chaos)
	// The control plane's own traffic, as coordinator->worker links.
	for r, c := range p.ctrls {
		msgs, bytes := c.WireTotals()
		tel.Links = append(tel.Links, wire.LinkStat{Src: -1, Dst: r, WireMsgs: msgs, WireBytes: bytes})
	}
	return tel, nil
}

// flattenChaos converts a merged kind->count map to the Telemetry's sorted
// parallel-slice form.
func flattenChaos(m map[string]int64) ([]string, []int64) {
	if len(m) == 0 {
		return nil, nil
	}
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	counts := make([]int64, len(kinds))
	for i, k := range kinds {
		counts[i] = m[k]
	}
	return kinds, counts
}

// close shuts the workers down (best effort) and hangs up the control
// plane.
func (p *remotePlane) close() error {
	if p.dead != nil {
		return nil // already poisoned and hung up
	}
	var firstSendErr error
	for _, c := range p.ctrls {
		if err := c.Send(&wire.ShutdownCmd{}); err != nil && firstSendErr == nil {
			firstSendErr = err
		}
	}
	for r := range p.ctrls {
		// Give each worker a moment to ack so its serve loop exits cleanly,
		// but never block shutdown on a wedged or already-gone peer: a
		// missing ack is not an error at teardown.
		timer := time.NewTimer(2 * time.Second)
		select {
		case <-p.replies[r]:
		case <-p.down[r]:
		case <-timer.C:
		}
		timer.Stop()
	}
	p.hangup()
	// Mark the plane closed so later operations fail fast with a named
	// cause and a second Close is a no-op.
	p.dead = errors.New("cluster closed")
	return firstSendErr
}
