package transformer

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/comm"
	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
	"repro/internal/tensor"
)

// DefaultCtrlTimeout bounds how long the coordinator waits for a worker's
// result frame. It must comfortably exceed the workers' ring receive
// timeout, so a mid-ring fault surfaces as the workers' own link/timeout
// errors (attributable to a rank pair) rather than a bare control-plane
// deadline.
const DefaultCtrlTimeout = 2 * comm.DefaultRecvTimeout

// ConnectConfig parameterizes a coordinator's connection to a worker mesh.
type ConnectConfig struct {
	// Addrs lists every worker rank's control address; Addrs[i] must answer
	// as rank i. World size is len(Addrs).
	Addrs []string
	// KVCapacity must match the workers' -kv-capacity flag; it participates
	// in the rendezvous config digest.
	KVCapacity int
	// DialTimeout bounds the control-plane rendezvous (workers may still be
	// meshing when the coordinator starts). Default 15s.
	DialTimeout time.Duration
	// RecvTimeout is the workers' ring receive deadline (their
	// -recv-timeout flag). It does not configure the workers — it informs
	// the default CtrlTimeout, which must exceed the ring deadline so a
	// mid-ring stall surfaces as the workers' own rank-attributed errors
	// rather than a bare control-plane deadline.
	RecvTimeout time.Duration
	// CtrlTimeout bounds each per-command worker reply. Default: twice
	// RecvTimeout when set, else DefaultCtrlTimeout.
	CtrlTimeout time.Duration
}

// ConfigSum digests everything two processes must agree on before forming a
// cluster: the full transformer configuration (weights seed included), the
// world size, the KV capacity, and the wire-protocol version. Workers and
// coordinator exchange it in the Hello handshake; a mismatch fails
// rendezvous with a named cause instead of surfacing later as skewed
// logits.
func ConfigSum(cfg Config, world, kvCapacity int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v|world=%d|kv=%d|wire=%d", cfg, world, kvCapacity, wire.Version)
	return h.Sum64()
}

// remotePlane is the coordinator's control plane: one framed connection per
// worker rank, carrying command/result frames in lockstep with the
// cluster's (single-threaded) command stream.
//
// Replies are matched to commands purely by stream order, so the plane is
// sound only while every command gets exactly one reply. Any broadcast
// failure — a send error (some workers may have received the command,
// others not) or a reply timeout (the late reply would alias the next
// command's) — therefore poisons the plane permanently: every subsequent
// command fails fast with the original cause instead of silently reading
// desynchronized or divergent rank state.
type remotePlane struct {
	ctrls   []*transport.Ctrl
	timeout time.Duration
	dead    error
}

// ConnectCluster dials a worker mesh and returns a distributed Cluster: the
// coordinator hosts no ranks, drives the workers' engines through command
// frames, and assembles their results. The weights are the coordinator's
// replica — workers built their own from the same configuration, and the
// handshake digest guarantees they match.
func ConnectCluster(w *Weights, cfg ConnectConfig) (*Cluster, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("transformer: distributed cluster needs worker addresses")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = transport.DefaultRendezvousTimeout
	}
	if cfg.CtrlTimeout <= 0 {
		if cfg.RecvTimeout > 0 {
			cfg.CtrlTimeout = 2 * cfg.RecvTimeout
		} else {
			cfg.CtrlTimeout = DefaultCtrlTimeout
		}
	}
	n := len(cfg.Addrs)
	hello := &wire.Hello{
		Magic: wire.Magic, Version: wire.Version, World: n, Rank: -1,
		ConfigSum: ConfigSum(w.Cfg, n, cfg.KVCapacity),
	}
	plane := &remotePlane{timeout: cfg.CtrlTimeout}
	for i, addr := range cfg.Addrs {
		ctrl, err := transport.DialCtrl(addr, hello, i, cfg.DialTimeout)
		if err != nil {
			plane.hangup()
			return nil, fmt.Errorf("transformer: connecting rank %d: %w", i, err)
		}
		plane.ctrls = append(plane.ctrls, ctrl)
	}
	return &Cluster{
		W:           w,
		n:           n,
		remote:      plane,
		kvCapacity:  cfg.KVCapacity,
		seqLens:     make(map[int]int),
		decodeSteps: make(map[int]int),
	}, nil
}

func (p *remotePlane) hangup() {
	for _, c := range p.ctrls {
		if c != nil {
			c.Close()
		}
	}
}

// bcast sends cmd to every worker, then collects one reply per worker.
// Sends complete before any reply is awaited: a ring pass needs all ranks
// running, so a worker must never wait on a peer whose command is still
// queued behind our slow reply read.
func (p *remotePlane) bcast(cmd any) ([]any, error) {
	if p.dead != nil {
		return nil, fmt.Errorf("transformer: control plane is down: %w", p.dead)
	}
	for r, c := range p.ctrls {
		if err := c.Send(cmd); err != nil {
			return nil, p.poison(fmt.Errorf("transformer: control send to rank %d: %w", r, err))
		}
	}
	out := make([]any, len(p.ctrls))
	for r, c := range p.ctrls {
		v, err := c.Recv(p.timeout)
		if err != nil {
			return nil, p.poison(fmt.Errorf("transformer: control reply from rank %d: %w", r, err))
		}
		out[r] = v
	}
	return out, nil
}

// poison marks the plane dead with its first fatal error and hangs up, so a
// stale in-flight reply can never be read as a later command's result.
func (p *remotePlane) poison(err error) error {
	if p.dead == nil {
		p.dead = err
		p.hangup()
	}
	return err
}

// firstErr surfaces the lowest-ranked worker error, matching the in-process
// RunCollect convention.
func firstErr(replies []any) error {
	for r, v := range replies {
		if msg := wire.ErrOf(v); msg != "" {
			return fmt.Errorf("rank %d: %s", r, msg)
		}
	}
	return nil
}

func (p *remotePlane) prefill(cmd *wire.PrefillCmd) ([]*tensor.Tensor, error) {
	replies, err := p.bcast(cmd)
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.PrefillResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered prefill with %T", r, v)
		}
		out[r] = res.Logits
	}
	return out, nil
}

func (p *remotePlane) decode(cmd *wire.DecodeCmd) ([][]float32, error) {
	replies, err := p.bcast(cmd)
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	out := make([][]float32, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.DecodeResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered decode with %T", r, v)
		}
		out[r] = res.Flat
	}
	return out, nil
}

// drop is fire-and-collect: eviction failures have no caller-visible error
// path (Drop returns nothing). A partial broadcast could leave the
// sequence evicted on some ranks and resident on others — which is why
// bcast poisons the plane on any failure: the skewed state can never be
// reached again, and the next prefill or decode fails with the cause.
func (p *remotePlane) drop(seq int) {
	replies, err := p.bcast(&wire.DropCmd{Seq: seq})
	if err != nil {
		return
	}
	_ = firstErr(replies)
}

func (p *remotePlane) detach(id uint64, seq, upTo int) ([][]int, error) {
	replies, err := p.bcast(&wire.DetachCmd{Seq: seq, UpTo: upTo, ID: id})
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	perRank := make([][]int, len(replies))
	for r, v := range replies {
		res, ok := v.(*wire.DetachResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered detach with %T", r, v)
		}
		perRank[r] = res.PerLayer
	}
	return perRank, nil
}

func (p *remotePlane) adopt(seq int, id uint64) error {
	replies, err := p.bcast(&wire.AdoptCmd{Seq: seq, ID: id})
	if err != nil {
		return err
	}
	return firstErr(replies)
}

func (p *remotePlane) releasePrefix(id uint64) {
	replies, err := p.bcast(&wire.ReleasePrefixCmd{ID: id})
	if err != nil {
		return
	}
	_ = firstErr(replies)
}

func (p *remotePlane) capInputs(seqIDs []int) (*capSnapshot, error) {
	replies, err := p.bcast(&wire.CapQueryCmd{Seqs: seqIDs})
	if err != nil {
		return nil, err
	}
	if err := firstErr(replies); err != nil {
		return nil, err
	}
	snap := &capSnapshot{avail: make([][]int, len(replies)), overhead: make([][][]int, len(replies))}
	for r, v := range replies {
		res, ok := v.(*wire.CapResult)
		if !ok {
			return nil, fmt.Errorf("transformer: rank %d answered capacity query with %T", r, v)
		}
		snap.avail[r] = res.Avail
		snap.overhead[r] = res.Overhead
	}
	return snap, nil
}

func (p *remotePlane) telemetry() (Telemetry, error) {
	replies, err := p.bcast(&wire.StatsCmd{})
	if err != nil {
		return Telemetry{}, err
	}
	if err := firstErr(replies); err != nil {
		return Telemetry{}, err
	}
	tel := Telemetry{
		Transport: "tcp",
		RankKV:    make([]int, len(replies)),
		Comm:      comm.Stats{Messages: map[comm.Kind]int64{}, Bytes: map[comm.Kind]float64{}},
	}
	// Each worker reports its own rank's send-side accounting and both
	// directions of its wire links; keep each link's stats from its sender's
	// snapshot so directions are never double-counted.
	for r, v := range replies {
		res, ok := v.(*wire.StatsResult)
		if !ok {
			return Telemetry{}, fmt.Errorf("transformer: rank %d answered stats with %T", r, v)
		}
		tel.RankKV[r] = res.CacheTokens
		if len(res.Assembly) == 5 {
			tel.Assembly.Rebuilds += res.Assembly[0]
			tel.Assembly.RebuildRows += res.Assembly[1]
			tel.Assembly.Appends += res.Assembly[2]
			tel.Assembly.AppendedRows += res.Assembly[3]
			tel.Assembly.Reuses += res.Assembly[4]
		}
		for i, k := range res.Kinds {
			tel.Comm.Messages[comm.Kind(k)] += res.Msgs[i]
			tel.Comm.Bytes[comm.Kind(k)] += res.Bytes[i]
		}
		for _, l := range res.Links {
			if l.Src == r {
				tel.Links = append(tel.Links, l)
			}
		}
	}
	// The control plane's own traffic, as coordinator->worker links.
	for r, c := range p.ctrls {
		msgs, bytes := c.WireTotals()
		tel.Links = append(tel.Links, wire.LinkStat{Src: -1, Dst: r, WireMsgs: msgs, WireBytes: bytes})
	}
	return tel, nil
}

// close shuts the workers down (best effort) and hangs up the control
// plane.
func (p *remotePlane) close() error {
	if p.dead != nil {
		return nil // already poisoned and hung up
	}
	var firstSendErr error
	for _, c := range p.ctrls {
		if err := c.Send(&wire.ShutdownCmd{}); err != nil && firstSendErr == nil {
			firstSendErr = err
		}
	}
	for _, c := range p.ctrls {
		// Give each worker a moment to ack so its serve loop exits cleanly,
		// but never block shutdown on a wedged or already-gone peer: a
		// missing ack is not an error at teardown.
		_, _ = c.Recv(2 * time.Second)
	}
	p.hangup()
	return firstSendErr
}
