package transformer

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/comm"
	"repro/internal/comm/wire"
	"repro/internal/kvcache"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// rankEngine holds one CP rank's execution state: per-layer KV caches and
// assembled-block mirrors, replicated weights, and the registry of detached
// prefix spans. The same engine code runs in two homes — N engines inside an
// in-process Cluster, or one engine inside a cprank worker process — driven
// by identical command frames, which is what makes the two deployments
// bit-identical: a rank cannot tell where its peers live.
type rankEngine struct {
	w        *Weights
	caches   []*kvcache.Cache           // per layer
	blocks   []*ring.BlockCache         // per layer
	prefixes map[uint64][]*kvcache.Span // detached prefixes, spans per layer

	// rec stages this rank's spans and metric series; epoch stamps them with
	// the cluster incarnation so merged traces survive recovery rebuilds. A
	// nil recorder is tracing off: every sweep timer degrades to a nil no-op
	// and the compute path takes zero clock readings.
	rec   *trace.Recorder
	epoch uint64
}

func newRankEngine(w *Weights, kvCapacity int, epoch uint64, rec *trace.Recorder) (*rankEngine, error) {
	m := w.Cfg.Model
	e := &rankEngine{w: w, prefixes: make(map[uint64][]*kvcache.Span), rec: rec, epoch: epoch}
	for l := 0; l < m.Layers; l++ {
		kc, err := kvcache.New(kvcache.Config{KVHeads: m.NumKV, HeadDim: m.HeadDim, Capacity: kvCapacity})
		if err != nil {
			return nil, err
		}
		e.caches = append(e.caches, kc)
		e.blocks = append(e.blocks, ring.NewBlockCache())
	}
	return e, nil
}

// prefill executes one rank's share of a fused varseq prefill command: the
// full per-layer loop of embeddings, QKV projection, ring attention, KV
// persistence, and the output head over this rank's token shard. The
// sharding plan is recomputed from the command — it is a pure function of
// (lengths, world size), so every rank derives the same plan without
// shipping it.
func (e *rankEngine) prefill(r *comm.Rank, cmd *wire.PrefillCmd) (*tensor.Tensor, error) {
	m := e.w.Cfg.Model
	lens := make([]int, len(cmd.Tokens))
	for i, toks := range cmd.Tokens {
		lens[i] = len(toks)
	}
	plan, err := sharding.NewBatchShard(lens, r.N())
	if err != nil {
		return nil, err
	}
	run := ring.PassKVPrefill
	if perf.Variant(cmd.Variant) == perf.PassQ {
		run = ring.PassQPrefill
	}
	lp := plan.LocalPositions(r.ID)
	ls := plan.LocalSeqs(r.ID)
	localLen := plan.LocalLen(r.ID)
	ids := make([]int, localLen)
	gpos := make([]int, localLen)
	for slot, pos := range lp {
		if pos == sharding.Pad {
			ids[slot] = -1
			gpos[slot] = -1
		} else {
			ids[slot] = cmd.Tokens[ls[slot]][pos]
			gpos[slot] = cmd.P[ls[slot]] + pos
		}
	}
	hidden, err := e.w.embedTokens(ids)
	if err != nil {
		return nil, err
	}
	for l := 0; l < m.Layers; l++ {
		q, k, v := e.w.projectQKV(l, hidden, localLen, gpos)
		out, err := run(&ring.PrefillInput{
			Rank: r, Plan: plan, P: cmd.P, SeqIDs: cmd.Seqs,
			Q: q, K: k, V: v,
			Cache: e.caches[l], Blocks: e.blocks[l], Elem: m.ElemBytes,
			Trace: e.rec.Sweep(r.ID, e.epoch, "prefill"),
		})
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", l, err)
		}
		if err := ring.AppendLocalKV(e.caches[l], plan, r.ID, cmd.P, cmd.Seqs, k, v); err != nil {
			return nil, err
		}
		e.w.attnResidual(l, hidden, out.O)
		e.w.ffnResidual(l, hidden, localLen)
	}
	flat := e.w.logits(hidden, localLen)
	return tensor.FromData(localLen, 1, m.VocabSize, flat)
}

// decodeOwnership derives the per-rank token assignment of a decode command:
// owned[r] lists the DecodeTokens rank r appends and heads, rows[r] their
// batch-row indices, and blockLen the uniform circulating block size. Pure
// function of the command, identical on every rank.
func decodeOwnership(cmd *wire.DecodeCmd, n int) (owned [][]ring.DecodeToken, rows [][]int, blockLen int) {
	owned = make([][]ring.DecodeToken, n)
	rows = make([][]int, n)
	for i, seq := range cmd.Seqs {
		r := cmd.Owners[i]
		owned[r] = append(owned[r], ring.DecodeToken{Seq: seq, Pos: cmd.Pos[i]})
		rows[r] = append(rows[r], i)
	}
	blockLen = 1
	for r := 0; r < n; r++ {
		if len(owned[r]) > blockLen {
			blockLen = len(owned[r])
		}
	}
	return owned, rows, blockLen
}

// decode executes one rank's share of a fused batched decode step and
// returns the flat logits of its owned rows (nil when it owns none this
// step — it still participates in every layer's ring attention).
func (e *rankEngine) decode(r *comm.Rank, cmd *wire.DecodeCmd) ([]float32, error) {
	m := e.w.Cfg.Model
	owned, ownedRows, blockLen := decodeOwnership(cmd, r.N())
	mine := ownedRows[r.ID]
	var hidden []float32
	pos := make([]int, len(mine))
	if len(mine) > 0 {
		ids := make([]int, len(mine))
		for j, row := range mine {
			ids[j] = cmd.Tokens[row]
			pos[j] = owned[r.ID][j].Pos
		}
		var err error
		hidden, err = e.w.embedTokens(ids)
		if err != nil {
			return nil, err
		}
	}
	for l := 0; l < m.Layers; l++ {
		in := &ring.DecodeInput{
			Rank: r, NumSeqs: len(cmd.Seqs), BlockLen: blockLen,
			Owned: owned[r.ID],
			Q:     tensor.New(0, m.NumHeads, m.HeadDim),
			K:     tensor.New(0, m.NumKV, m.HeadDim),
			V:     tensor.New(0, m.NumKV, m.HeadDim),
			Cache: e.caches[l], Blocks: e.blocks[l], Elem: m.ElemBytes,
			Trace: e.rec.Sweep(r.ID, e.epoch, "decode"),
		}
		if len(mine) > 0 {
			in.Q, in.K, in.V = e.w.projectQKV(l, hidden, len(mine), pos)
		}
		out, err := ring.PassQDecode(in)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", l, err)
		}
		if len(mine) > 0 {
			e.w.attnResidual(l, hidden, out.O)
			e.w.ffnResidual(l, hidden, len(mine))
		}
	}
	if len(mine) == 0 {
		return nil, nil
	}
	return e.w.logits(hidden, len(mine)), nil
}

// drop evicts one sequence from every layer's cache and mirror.
func (e *rankEngine) drop(seq int) {
	for l := range e.caches {
		e.caches[l].Drop(seq)
		e.blocks[l].Drop(seq)
	}
}

// detach pins the first upTo tokens of a resident sequence into the prefix
// registry under id, returning the per-layer token counts this rank holds
// below the boundary (the coordinator validates the cross-rank sums).
func (e *rankEngine) detach(id uint64, seq, upTo int) ([]int, error) {
	if _, ok := e.prefixes[id]; ok {
		return nil, fmt.Errorf("transformer: prefix id %d already exists", id)
	}
	spans := make([]*kvcache.Span, len(e.caches))
	perLayer := make([]int, len(e.caches))
	for l, kc := range e.caches {
		sp, err := kc.AcquireSpan(seq, upTo)
		if err != nil {
			for _, acquired := range spans[:l] {
				acquired.Release()
			}
			return nil, err
		}
		spans[l] = sp
		perLayer[l] = sp.Tokens()
	}
	e.prefixes[id] = spans
	return perLayer, nil
}

// adopt seeds a new sequence from a detached prefix's spans. Partial
// failures leave layers inconsistent; the caller drops the sequence.
func (e *rankEngine) adopt(seq int, id uint64) error {
	spans, ok := e.prefixes[id]
	if !ok {
		return fmt.Errorf("transformer: adopting unknown prefix id %d", id)
	}
	for l, kc := range e.caches {
		if err := kc.AdoptSpan(seq, spans[l]); err != nil {
			return err
		}
	}
	return nil
}

// releasePrefix frees a detached prefix's page references. Unknown ids are
// a no-op (release after a failed distributed detach).
func (e *rankEngine) releasePrefix(id uint64) {
	for _, sp := range e.prefixes[id] {
		sp.Release()
	}
	delete(e.prefixes, id)
}

// capacity returns the per-layer KV cache capacity (0 = unlimited).
func (e *rankEngine) capacity() int { return e.caches[0].Capacity() }

// capInfo snapshots the admission-control inputs for the listed sequences:
// per-layer free rows and per-(sequence, layer) copy-on-write append
// overhead.
func (e *rankEngine) capInfo(seqs []int) (avail []int, overhead [][]int) {
	avail = make([]int, len(e.caches))
	for l, kc := range e.caches {
		avail[l] = kc.Capacity() - kc.TotalTokens()
	}
	overhead = make([][]int, len(seqs))
	for i, seq := range seqs {
		overhead[i] = make([]int, len(e.caches))
		for l, kc := range e.caches {
			overhead[i][l] = kc.AppendOverhead(seq)
		}
	}
	return avail, overhead
}

// cacheTokens returns this rank's cached tokens summed over layers.
func (e *rankEngine) cacheTokens() int {
	n := 0
	for _, kc := range e.caches {
		n += kc.TotalTokens()
	}
	return n
}

// assembly aggregates the per-layer assembled-KV mirror copy counters.
func (e *rankEngine) assembly() ring.BlockCacheStats {
	var total ring.BlockCacheStats
	for _, bc := range e.blocks {
		total.Add(bc.Stats())
	}
	return total
}

// traceResult drains this rank's staged spans and series deltas into a wire
// frame. The worker recorder resets on every drain; the coordinator's merged
// store is the cumulative source of truth.
func (e *rankEngine) traceResult(rank int) *wire.TraceResult {
	spans, snaps := e.rec.Drain()
	return &wire.TraceResult{
		Rank:   rank,
		Spans:  spansToWire(spans),
		Series: snapsToWire(snaps),
	}
}

// statsResult snapshots this rank's telemetry into a wire frame: cache
// occupancy, assembly counters, and the world's comm accounting for this
// rank (kinds sorted for a deterministic encoding).
func (e *rankEngine) statsResult(world *comm.World) *wire.StatsResult {
	a := e.assembly()
	res := &wire.StatsResult{
		CacheTokens: e.cacheTokens(),
		Assembly:    []int64{a.Rebuilds, a.RebuildRows, a.Appends, a.AppendedRows, a.Reuses},
		Links:       world.LinkStats(),
	}
	// Process-local robustness counters: frames through the CRC check and
	// chaos faults this worker injected. The coordinator sums them across
	// ranks.
	res.IntegrityChecked, res.IntegrityRejected = wire.IntegrityStats()
	res.ChaosKinds, res.ChaosCounts = chaos.Totals()
	st := world.TotalStats()
	kinds := make([]string, 0, len(st.Messages))
	for k := range st.Messages {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		res.Kinds = append(res.Kinds, k)
		res.Msgs = append(res.Msgs, st.Messages[comm.Kind(k)])
		res.Bytes = append(res.Bytes, st.Bytes[comm.Kind(k)])
	}
	return res
}
