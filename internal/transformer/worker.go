package transformer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
)

// WorkerConfig parameterizes one cprank worker process: which rank it
// hosts, where the mesh lives, and the model it replicates.
type WorkerConfig struct {
	Transformer Config // must match the coordinator's (digest-checked)
	Rank, World int

	// Listen is the TCP listen address (may be host:0); ignored when
	// Listener is set.
	Listen   string
	Listener net.Listener

	// Addrs lists every rank's address. Nil enables the rendezvous
	// exchange: the worker prints "CPRANK_ADDR <addr>" on AddrOut and reads
	// the full comma-separated list as one line from AddrIn — how a parent
	// process wires up a mesh of :0 listeners without port races.
	Addrs   []string
	AddrOut io.Writer
	AddrIn  io.Reader

	KVCapacity        int
	RecvTimeout       time.Duration // ring receive deadline (0 = comm default)
	RendezvousTimeout time.Duration
}

// RunWorker hosts one CP rank: builds the replicated weights, joins the TCP
// mesh (plus the coordinator's control connection), and serves command
// frames until shutdown or coordinator hangup. This is the entire cprank
// process in one call, exported so tests and examples can run workers
// without shelling out to the binary.
func RunWorker(cfg WorkerConfig) error {
	w, err := NewWeights(cfg.Transformer)
	if err != nil {
		return err
	}
	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", cfg.Listen)
		if err != nil {
			return fmt.Errorf("transformer: worker %d listen: %w", cfg.Rank, err)
		}
	}
	if cfg.AddrOut != nil {
		fmt.Fprintf(cfg.AddrOut, "CPRANK_ADDR %s\n", ln.Addr())
	}
	addrs := cfg.Addrs
	if addrs == nil {
		if cfg.AddrIn == nil {
			ln.Close()
			return errors.New("transformer: worker has neither Addrs nor AddrIn")
		}
		line, err := bufio.NewReader(cfg.AddrIn).ReadString('\n')
		if err != nil {
			ln.Close()
			return fmt.Errorf("transformer: worker %d reading address list: %w", cfg.Rank, err)
		}
		addrs = strings.Split(strings.TrimSpace(line), ",")
	}
	tp, ctrl, err := transport.Join(transport.TCPConfig{
		World: cfg.World, Rank: cfg.Rank, Addrs: addrs, Listener: ln,
		ConfigSum:         ConfigSum(cfg.Transformer, cfg.World, cfg.KVCapacity),
		ExpectCtrl:        true,
		RendezvousTimeout: cfg.RendezvousTimeout,
	})
	if err != nil {
		return err
	}
	defer tp.Close()
	defer ctrl.Close()
	var commOpts []comm.Option
	if cfg.RecvTimeout > 0 {
		commOpts = append(commOpts, comm.WithRecvTimeout(cfg.RecvTimeout))
	}
	world := comm.NewWorldOver(tp, commOpts...)
	return ServeRank(ctrl, world, w, cfg.KVCapacity)
}

// ServeRank runs one rank's command loop: receive a control frame, execute
// it on the rank engine (ring passes flow over the world's transport), and
// reply with a result frame. Engine errors are reported in the reply and
// the loop keeps serving — they are the coordinator's to handle; only
// control-plane breakage (or shutdown) ends the loop. A coordinator hangup
// (EOF) is an orderly exit.
func ServeRank(ctrl *transport.Ctrl, world *comm.World, w *Weights, kvCapacity int) error {
	local := world.LocalRanks()
	if len(local) != 1 {
		return fmt.Errorf("transformer: worker world hosts %d ranks, want exactly 1", len(local))
	}
	rank := world.Rank(local[0])
	e, err := newRankEngine(w, kvCapacity)
	if err != nil {
		return err
	}
	for {
		v, err := ctrl.Recv(0)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator hung up
			}
			return err
		}
		reply, shutdown := e.handle(rank, world, v)
		if err := ctrl.Send(reply); err != nil {
			return err
		}
		if shutdown {
			return nil
		}
	}
}

// handle executes one command frame. Panics become error replies so a
// malformed command cannot kill the worker while its peers wait mid-ring.
func (e *rankEngine) handle(rank *comm.Rank, world *comm.World, v any) (reply any, shutdown bool) {
	defer func() {
		if p := recover(); p != nil {
			reply = &wire.Ack{Err: fmt.Sprintf("rank %d panicked: %v", rank.ID, p)}
		}
	}()
	switch cmd := v.(type) {
	case *wire.PrefillCmd:
		logits, err := e.prefill(rank, cmd)
		return &wire.PrefillResult{Logits: logits, Err: errString(err)}, false
	case *wire.DecodeCmd:
		flat, err := e.decode(rank, cmd)
		return &wire.DecodeResult{Flat: flat, Err: errString(err)}, false
	case *wire.DropCmd:
		e.drop(cmd.Seq)
		return &wire.Ack{}, false
	case *wire.DetachCmd:
		perLayer, err := e.detach(cmd.ID, cmd.Seq, cmd.UpTo)
		return &wire.DetachResult{PerLayer: perLayer, Err: errString(err)}, false
	case *wire.AdoptCmd:
		return &wire.Ack{Err: errString(e.adopt(cmd.Seq, cmd.ID))}, false
	case *wire.ReleasePrefixCmd:
		e.releasePrefix(cmd.ID)
		return &wire.Ack{}, false
	case *wire.CapQueryCmd:
		avail, overhead := e.capInfo(cmd.Seqs)
		return &wire.CapResult{Capacity: e.capacity(), Avail: avail, Overhead: overhead}, false
	case *wire.StatsCmd:
		return e.statsResult(world), false
	case *wire.ShutdownCmd:
		return &wire.Ack{}, true
	default:
		return &wire.Ack{Err: fmt.Sprintf("rank %d received unsupported command %T", rank.ID, v)}, false
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// WorkerMain is the cprank entry point shared with self-executing examples:
// it runs RunWorker with the standard stdout/stdin address exchange when no
// explicit address list is given, and maps failure onto a process exit
// code.
func WorkerMain(cfg WorkerConfig) {
	if cfg.Addrs == nil {
		cfg.AddrOut = os.Stdout
		cfg.AddrIn = os.Stdin
	}
	if err := RunWorker(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cprank: rank %d: %v\n", cfg.Rank, err)
		os.Exit(1)
	}
}
