package transformer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
	"repro/internal/trace"
)

// ErrCoordinatorHangup reports a worker serve loop that ended because the
// coordinator's control connection dropped without an explicit shutdown
// command — the signature of a coordinator-initiated epoch rebuild (or a
// coordinator crash). Rejoin loops treat it as "rejoin at the next epoch";
// single-shot workers treat it as an orderly exit.
var ErrCoordinatorHangup = errors.New("transformer: coordinator hung up")

// WorkerConfig parameterizes one cprank worker process: which rank it
// hosts, where the mesh lives, and the model it replicates.
type WorkerConfig struct {
	Transformer Config // must match the coordinator's (digest-checked)
	Rank, World int

	// Listen is the TCP listen address (may be host:0); ignored when
	// Listener is set.
	Listen   string
	Listener net.Listener

	// Addrs lists every rank's address. Nil enables the rendezvous
	// exchange: the worker prints "CPRANK_ADDR <addr>" on AddrOut and reads
	// the full comma-separated list as one line from AddrIn — how a parent
	// process wires up a mesh of :0 listeners without port races.
	Addrs   []string
	AddrOut io.Writer
	AddrIn  io.Reader

	KVCapacity        int
	RecvTimeout       time.Duration // ring receive deadline (0 = comm default)
	RendezvousTimeout time.Duration

	// HeartbeatEvery / HeartbeatMisses tune mesh liveness detection: a
	// heartbeat frame every HeartbeatEvery, a link declared dead after
	// HeartbeatMisses silent periods. Zero values take the transport
	// defaults (500ms x 3); HeartbeatMisses < 0 disables read-side
	// liveness. The worker also heartbeats its control connection at the
	// same period so a coordinator can spot a wedged worker process.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int

	// WrapTransport, when set, intercepts the joined mesh transport before
	// the world is built around it — the chaos-injection hook. Errors abort
	// the incarnation.
	WrapTransport func(transport.Transport) (transport.Transport, error)

	// MaxTraceSpans caps the worker's span staging buffer per incarnation
	// (0 = trace.DefaultMaxSpans). Overflow is dropped and counted in
	// cp_trace_spans_dropped_total rather than growing without bound between
	// coordinator drains.
	MaxTraceSpans int

	// Epoch is the cluster incarnation to join first (0 = 1). A respawned
	// replacement for a dead rank can leave it 1: its peers answer from the
	// current epoch and the handshake adopts it.
	Epoch uint64
	// Rejoin keeps the worker alive across cluster incarnations: when the
	// serve loop ends with a coordinator hangup, a lost peer, or a stale
	// epoch, the worker discards its engine and rejoins the mesh at the
	// next (or observed) epoch instead of exiting. MaxRejoins bounds the
	// cycles (0 = 16).
	Rejoin     bool
	MaxRejoins int
}

// RunWorker hosts one CP rank for a single cluster incarnation: builds the
// replicated weights, joins the TCP mesh (plus the coordinator's control
// connection), and serves command frames until shutdown or coordinator
// hangup (both orderly here — use RunWorkerLoop for rejoin semantics).
func RunWorker(cfg WorkerConfig) error {
	w, err := NewWeights(cfg.Transformer)
	if err != nil {
		return err
	}
	b, err := newWorkerBoot(&cfg)
	if err != nil {
		return err
	}
	defer b.close()
	err = b.serveEpoch(cfg, w, cfg.Epoch)
	if errors.Is(err, ErrCoordinatorHangup) {
		return nil
	}
	return err
}

// RunWorkerLoop hosts one CP rank across cluster incarnations: each cycle
// joins the mesh at the current epoch with a fresh engine, serves until the
// incarnation ends, and rejoins at the next epoch. The loop exits cleanly
// on an explicit shutdown command, and with an error when the rendezvous
// for a new epoch times out (no coordinator came back) or the rejoin budget
// is spent.
func RunWorkerLoop(cfg WorkerConfig) error {
	if !cfg.Rejoin {
		return RunWorker(cfg)
	}
	w, err := NewWeights(cfg.Transformer)
	if err != nil {
		return err
	}
	b, err := newWorkerBoot(&cfg)
	if err != nil {
		return err
	}
	defer b.close()
	maxRejoins := cfg.MaxRejoins
	if maxRejoins <= 0 {
		maxRejoins = 16
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = 1
	}
	for rejoins := 0; ; rejoins++ {
		err := b.serveEpoch(cfg, w, epoch)
		var eErr *transport.EpochError
		switch {
		case err == nil:
			return nil // explicit shutdown command
		case errors.As(err, &eErr):
			// The mesh is already at a newer epoch; adopt it.
			log.Printf("cprank: rank %d adopting epoch %d (was joining %d)", cfg.Rank, eErr.Observed, epoch)
			epoch = eErr.Observed
		case errors.Is(err, ErrCoordinatorHangup):
			// This incarnation is dead; the coordinator will rebuild at the
			// next epoch.
			log.Printf("cprank: rank %d lost the coordinator at epoch %d; rejoining at %d", cfg.Rank, epoch, epoch+1)
			epoch++
		default:
			// Anything else — rendezvous timeout, a rejected stray peer
			// aborting the join, a transient re-listen failure — retries at
			// the same epoch while budget remains. A rejoin worker's job is
			// to come back; only a spent budget makes it give up.
			log.Printf("cprank: rank %d rejoin at epoch %d failed (%v); retrying", cfg.Rank, epoch, err)
		}
		// rejoins counts completed cycles; the one about to start is
		// rejoin number rejoins+1, and the budget bounds rejoins proper —
		// the initial join is never charged against it.
		if rejoins+1 > maxRejoins {
			return fmt.Errorf("transformer: rank %d exceeded %d rejoins (last: %v)", cfg.Rank, maxRejoins, err)
		}
	}
}

// workerBoot holds what persists across a worker's incarnations: the
// resolved address list and this rank's stable listen address. The first
// cycle may consume a caller-provided listener (and run the stdin/stdout
// address exchange); later cycles re-listen on the same address.
type workerBoot struct {
	addrs      []string
	listenAddr string
	ln         net.Listener // first cycle's listener; nil afterwards
}

func newWorkerBoot(cfg *WorkerConfig) (*workerBoot, error) {
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transformer: worker %d listen: %w", cfg.Rank, err)
		}
	}
	if cfg.AddrOut != nil {
		fmt.Fprintf(cfg.AddrOut, "CPRANK_ADDR %s\n", ln.Addr())
	}
	addrs := cfg.Addrs
	if addrs == nil {
		if cfg.AddrIn == nil {
			ln.Close()
			return nil, errors.New("transformer: worker has neither Addrs nor AddrIn")
		}
		line, err := bufio.NewReader(cfg.AddrIn).ReadString('\n')
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("transformer: worker %d reading address list: %w", cfg.Rank, err)
		}
		addrs = strings.Split(strings.TrimSpace(line), ",")
	}
	return &workerBoot{addrs: addrs, listenAddr: ln.Addr().String(), ln: ln}, nil
}

// listener returns the cycle's listener: the boot (or parked) listener
// when one is held, else a fresh bind of the stable address. The brief
// retry absorbs an OS still releasing the port.
func (b *workerBoot) listener() (net.Listener, error) {
	if b.ln != nil {
		ln := b.ln
		b.ln = nil
		return ln, nil
	}
	bo := transport.NewBackoff("listen:" + b.listenAddr)
	bo.Cap = 200 * time.Millisecond // keep the whole retry span rejoin-sized
	bo.Budget = 16
	var lastErr error
	for {
		ln, err := net.Listen("tcp", b.listenAddr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		d, ok := bo.Next()
		if !ok {
			return nil, fmt.Errorf("transformer: re-listen on %s: %w", b.listenAddr, bo.Exhausted(lastErr))
		}
		time.Sleep(d)
	}
}

// park re-binds the worker's address as a placeholder the moment Join
// releases it (Join closes its listener once the mesh completes), and the
// next cycle's Join inherits the parked listener directly. Without this the
// port sits unbound for the whole serve phase — long enough for another
// process to claim it (ephemeral-port setups especially), which would
// strand every future rejoin. Dialers that hit the parked socket queue in
// the kernel backlog and complete their handshake when the next rendezvous
// starts accepting.
func (b *workerBoot) park() {
	for i := 0; i < 40 && b.ln == nil; i++ {
		ln, err := net.Listen("tcp", b.listenAddr)
		if err == nil {
			b.ln = ln
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Failed to park: listener() retries the bind at the next rejoin.
}

// close releases a parked listener (worker exiting for good).
func (b *workerBoot) close() {
	if b.ln != nil {
		b.ln.Close()
		b.ln = nil
	}
}

// serveEpoch runs one incarnation: fresh engine, mesh join at the given
// epoch, serve until the incarnation ends.
func (b *workerBoot) serveEpoch(cfg WorkerConfig, w *Weights, epoch uint64) error {
	ln, err := b.listener()
	if err != nil {
		return err
	}
	tp, ctrl, err := transport.Join(transport.TCPConfig{
		World: cfg.World, Rank: cfg.Rank, Addrs: b.addrs, Listener: ln,
		ConfigSum:         ConfigSum(cfg.Transformer, cfg.World, cfg.KVCapacity),
		Epoch:             epoch,
		ExpectCtrl:        true,
		RendezvousTimeout: cfg.RendezvousTimeout,
		HeartbeatEvery:    cfg.HeartbeatEvery,
		HeartbeatMisses:   cfg.HeartbeatMisses,
	})
	if err != nil {
		return err
	}
	b.park() // hold the port through the serve phase for the next rejoin
	defer tp.Close()
	defer ctrl.Close()
	var mesh transport.Transport = tp
	if cfg.WrapTransport != nil {
		if mesh, err = cfg.WrapTransport(tp); err != nil {
			return fmt.Errorf("transformer: rank %d transport wrapper: %w", cfg.Rank, err)
		}
	}
	var commOpts []comm.Option
	if cfg.RecvTimeout > 0 {
		commOpts = append(commOpts, comm.WithRecvTimeout(cfg.RecvTimeout))
	}
	world := comm.NewWorldOver(mesh, commOpts...)
	hb := cfg.HeartbeatEvery
	if hb <= 0 {
		hb = transport.DefaultHeartbeatEvery
	}
	return ServeRank(ctrl, world, w, cfg.KVCapacity, epoch, cfg.MaxTraceSpans, hb)
}

// ServeRank runs one rank's command loop: receive a control frame, execute
// it on the rank engine (ring passes flow over the world's transport), and
// reply with a result frame. Engine errors are reported in the reply and
// the loop keeps serving — they are the coordinator's to handle.
//
// Data-plane faults (a peer link dying) never end the loop either: the
// worker sends the coordinator an unsolicited FailureNote — once per dead
// peer — and keeps serving, because only the coordinator can tell a rank
// crash that needs an epoch rebuild from an orderly teardown where a peer
// simply exited first. Exiting on the event would race the in-flight
// ShutdownCmd at every clean shutdown. The loop's only exits are
// control-plane signals:
//
//   - explicit ShutdownCmd: returns nil (orderly exit, never rejoined)
//   - coordinator hangup: returns ErrCoordinatorHangup (rebuild or crash;
//     the rejoin loop re-enters rendezvous at the next epoch)
//
// heartbeatEvery > 0 also heartbeats the control connection at that period,
// mirroring the data-plane links: a coordinator reading with an idle
// deadline can then tell a wedged worker process from a merely quiet one.
func ServeRank(ctrl *transport.Ctrl, world *comm.World, w *Weights, kvCapacity int, epoch uint64, maxTraceSpans int, heartbeatEvery time.Duration) error {
	local := world.LocalRanks()
	if len(local) != 1 {
		return fmt.Errorf("transformer: worker world hosts %d ranks, want exactly 1", len(local))
	}
	if epoch == 0 {
		epoch = 1
	}
	rank := world.Rank(local[0])
	// Each incarnation stages its spans in its own recorder; the coordinator
	// drains them over TraceCmd round trips and merges into its cumulative
	// store, epoch-stamped so traces survive recovery rebuilds.
	rec := trace.New()
	rec.SetMaxSpans(maxTraceSpans)
	e, err := newRankEngine(w, kvCapacity, epoch, rec)
	if err != nil {
		return err
	}
	// A dedicated reader lets the loop select between command frames and
	// the transport's failure events; stop bounds its life when the loop
	// exits for a non-control reason.
	frames := make(chan any, 1)
	readErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			v, err := ctrl.Recv(0)
			if err != nil {
				readErr <- err
				return
			}
			select {
			case frames <- v:
			case <-stop:
				return
			}
		}
	}()
	if heartbeatEvery > 0 {
		go func() {
			tick := time.NewTicker(heartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					// A failed write means the ctrl conn is dead; the reader
					// goroutine surfaces that as the loop's exit signal.
					_ = ctrl.Send(&wire.Heartbeat{})
				case <-stop:
					return
				}
			}
		}()
	}
	noted := make(map[int]bool)
	failures := world.Failures()
	for {
		select {
		case v := <-frames:
			if _, ok := v.(*wire.Heartbeat); ok {
				continue // liveness only, never a command
			}
			reply, shutdown := e.handle(rank, world, v)
			if err := ctrl.Send(reply); err != nil {
				return err
			}
			if shutdown {
				return nil
			}
		case err := <-readErr:
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return ErrCoordinatorHangup
			}
			return err
		case ev, ok := <-failures:
			if !ok {
				failures = nil // transport closed; stop selecting on it
				continue
			}
			if noted[ev.Peer] {
				continue
			}
			noted[ev.Peer] = true
			// Best effort: surface the dead link to the coordinator. The
			// note is filtered out of the command/result stream there, so it
			// can never alias a reply.
			_ = ctrl.Send(&wire.FailureNote{
				Rank:  rank.ID,
				Cause: fmt.Sprintf("link to rank %d failed: %v", ev.Peer, ev.Cause),
			})
		}
	}
}

// handle executes one command frame. Panics become error replies so a
// malformed command cannot kill the worker while its peers wait mid-ring.
func (e *rankEngine) handle(rank *comm.Rank, world *comm.World, v any) (reply any, shutdown bool) {
	defer func() {
		if p := recover(); p != nil {
			reply = &wire.Ack{Err: fmt.Sprintf("rank %d panicked: %v", rank.ID, p)}
		}
	}()
	switch cmd := v.(type) {
	case *wire.PrefillCmd:
		logits, err := e.prefill(rank, cmd)
		return &wire.PrefillResult{Logits: logits, Err: errString(err)}, false
	case *wire.DecodeCmd:
		flat, err := e.decode(rank, cmd)
		return &wire.DecodeResult{Flat: flat, Err: errString(err)}, false
	case *wire.DropCmd:
		e.drop(cmd.Seq)
		return &wire.Ack{}, false
	case *wire.DetachCmd:
		perLayer, err := e.detach(cmd.ID, cmd.Seq, cmd.UpTo)
		return &wire.DetachResult{PerLayer: perLayer, Err: errString(err)}, false
	case *wire.AdoptCmd:
		return &wire.Ack{Err: errString(e.adopt(cmd.Seq, cmd.ID))}, false
	case *wire.ReleasePrefixCmd:
		e.releasePrefix(cmd.ID)
		return &wire.Ack{}, false
	case *wire.CapQueryCmd:
		avail, overhead := e.capInfo(cmd.Seqs)
		return &wire.CapResult{Capacity: e.capacity(), Avail: avail, Overhead: overhead}, false
	case *wire.StatsCmd:
		return e.statsResult(world), false
	case *wire.TraceCmd:
		return e.traceResult(rank.ID), false
	case *wire.ShutdownCmd:
		return &wire.Ack{}, true
	default:
		return &wire.Ack{Err: fmt.Sprintf("rank %d received unsupported command %T", rank.ID, v)}, false
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// WorkerMain is the cprank entry point shared with self-executing examples:
// it runs the worker (with the rejoin loop when cfg.Rejoin is set) using
// the standard stdout/stdin address exchange when no explicit address list
// is given, and maps failure onto a process exit code.
func WorkerMain(cfg WorkerConfig) {
	if cfg.Addrs == nil {
		cfg.AddrOut = os.Stdout
		cfg.AddrIn = os.Stdin
	}
	if err := RunWorkerLoop(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cprank: rank %d: %v\n", cfg.Rank, err)
		os.Exit(1)
	}
}
