package transformer

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/perf"
)

// chunkedPrefill runs a canonical chunked prefill — absolute budget-aligned
// chunks from the sequence's current position — and returns the logits of
// every prefilled position in order.
func chunkedPrefill(t *testing.T, c *Cluster, seq int, tokens []int, budget int, v perf.Variant) [][]float32 {
	t.Helper()
	var out [][]float32
	for at := 0; at < len(tokens); {
		pos := c.SeqLen(seq)
		n := budget - pos%budget
		if n > len(tokens)-at {
			n = len(tokens) - at
		}
		logits, err := c.Prefill(seq, tokens[at:at+n], v)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, logits...)
		at += n
	}
	return out
}

func requireExact(t *testing.T, got, want []float32, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d logits", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: logit %d differs: %v != %v (bit-identity violated)", what, i, got[i], want[i])
		}
	}
}

// TestPrefixReuseBitIdentical is the subsystem's acceptance check: a prefill
// seeded from a detached prefix — across sessions, after the donor decoded
// and was dropped — produces logits and decode streams exactly equal (float
// equality, not tolerance) to a cold canonical prefill of the full prompt.
// Covers both static ring variants and perf.Auto, whose per-chunk Eq. 1
// choice is a pure function of absolute position and therefore replays
// identically warm and cold.
func TestPrefixReuseBitIdentical(t *testing.T) {
	const budget = 8
	prompt := make([]int, 28)
	for i := range prompt {
		prompt[i] = (i*13 + 7) % 64
	}
	for _, ranks := range []int{2, 3} {
		for _, v := range []perf.Variant{perf.PassKV, perf.PassQ, perf.Auto} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, v), func(t *testing.T) {
				w, err := NewWeights(Tiny(123))
				if err != nil {
					t.Fatal(err)
				}
				warm, err := NewCluster(w, ranks)
				if err != nil {
					t.Fatal(err)
				}
				// Donor: canonical prefill, then decode a few steps so the
				// detach happens against post-decode state.
				donorLogits := chunkedPrefill(t, warm, 1, prompt, budget, v)
				tok := Argmax(donorLogits[len(donorLogits)-1])
				for i := 0; i < 3; i++ {
					l, err := warm.Decode(1, tok)
					if err != nil {
						t.Fatal(err)
					}
					tok = Argmax(l)
				}
				const hit = 24 // 3 full budget-aligned blocks of the 28-token prompt
				pre, err := warm.DetachPrefix(1, hit)
				if err != nil {
					t.Fatal(err)
				}
				warm.Drop(1)

				// Warm start on a different session id: adopt + miss suffix.
				warmLogits, err := warm.PrefillFrom(2, pre, prompt[hit:], v)
				if err != nil {
					t.Fatal(err)
				}
				if warm.SeqLen(2) != len(prompt) {
					t.Fatalf("warm SeqLen = %d, want %d", warm.SeqLen(2), len(prompt))
				}

				// Cold reference: same session id, fresh cluster, full
				// canonical prefill.
				cold, err := NewCluster(w, ranks)
				if err != nil {
					t.Fatal(err)
				}
				coldLogits := chunkedPrefill(t, cold, 2, prompt, budget, v)

				if len(warmLogits) != len(prompt)-hit {
					t.Fatalf("warm suffix logits = %d, want %d", len(warmLogits), len(prompt)-hit)
				}
				for i, wl := range warmLogits {
					requireExact(t, wl, coldLogits[hit+i], fmt.Sprintf("suffix position %d", hit+i))
				}

				// Decode streams must stay bit-identical step by step.
				next := Argmax(warmLogits[len(warmLogits)-1])
				for step := 0; step < 6; step++ {
					wl, err := warm.Decode(2, next)
					if err != nil {
						t.Fatal(err)
					}
					cl, err := cold.Decode(2, next)
					if err != nil {
						t.Fatal(err)
					}
					requireExact(t, wl, cl, fmt.Sprintf("decode step %d", step))
					next = Argmax(wl)
				}
				pre.Release()
			})
		}
	}
}

// TestPrefixReuseSharedAcrossSessions: one detached prefix seeds several
// sibling sessions at once; all coexist and decode independently with the
// donor gone.
func TestPrefixReuseSharedAcrossSessions(t *testing.T) {
	const budget = 4
	prompt := []int{3, 9, 27, 17, 51, 25, 11, 33}
	w, err := NewWeights(Tiny(9))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunkedPrefill(t, c, 1, prompt, budget, perf.PassKV)
	pre, err := c.DetachPrefix(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Drop(1)
	want := make(map[int][]float32)
	for _, seq := range []int{10, 11, 12} {
		logits, err := c.PrefillFrom(seq, pre, []int{60, 61}, perf.PassKV)
		if err != nil {
			t.Fatal(err)
		}
		want[seq] = logits[len(logits)-1]
	}
	// Identical suffixes at identical positions: identical logits.
	requireExact(t, want[11], want[10], "sibling 11")
	requireExact(t, want[12], want[10], "sibling 12")
	// Each sibling decodes independently (different owner rotations are
	// fine — each matches its own serial reference by session id).
	for _, seq := range []int{10, 11, 12} {
		if _, err := c.Decode(seq, 5); err != nil {
			t.Fatalf("sibling %d decode: %v", seq, err)
		}
	}
	pre.Release()
}

func TestDetachAdoptValidation(t *testing.T) {
	w, err := NewWeights(Tiny(2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DetachPrefix(1, 4); err == nil {
		t.Fatal("detach of unknown sequence accepted")
	}
	if _, err := c.Prefill(1, []int{1, 2, 3, 4}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DetachPrefix(1, 5); err == nil {
		t.Fatal("detach beyond sequence length accepted")
	}
	if _, err := c.DetachPrefix(1, 0); err == nil {
		t.Fatal("zero-length detach accepted")
	}
	pre, err := c.DetachPrefix(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptPrefix(1, pre); err == nil {
		t.Fatal("adoption onto a resident sequence accepted")
	}
	if err := c.AdoptPrefix(-1, pre); err == nil {
		t.Fatal("negative sequence id accepted")
	}
	pre.Release()
	if err := c.AdoptPrefix(2, pre); err == nil {
		t.Fatal("released prefix adopted")
	}
}

func TestPrefillCapacityErrorBeforeMutation(t *testing.T) {
	w, err := NewWeights(Tiny(3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(w, 2, WithKVCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	big := make([]int, 12) // 6 rows per rank per layer > 4
	var ce *CapacityError
	_, err = c.Prefill(1, big, perf.PassKV)
	if !errors.As(err, &ce) || len(ce.Seqs) != 1 || ce.Seqs[0] != 1 {
		t.Fatalf("expected CapacityError for seq 1, got %v", err)
	}
	// The precheck fired before any ring pass: nothing is resident.
	if c.SeqLen(1) != 0 {
		t.Fatalf("failed prefill left SeqLen %d", c.SeqLen(1))
	}
	for r, n := range c.RankCacheTokens() {
		if n != 0 {
			t.Fatalf("rank %d holds %d tokens after rejected prefill", r, n)
		}
	}
	// A prompt that fits still works.
	if _, err := c.Prefill(1, big[:8], perf.PassKV); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeCapacityNamesOffenderOnly: when two sequences' decode tokens
// land on the same owner rank with room for only one, the CapacityError
// names exactly the overflowing sequence — before any cache mutation — so
// the scheduler can shed it and rerun the rest.
func TestDecodeCapacityNamesOffenderOnly(t *testing.T) {
	// Find two small ids whose step-0 decode owner collides on 2 ranks.
	a, b := -1, -1
search:
	for i := 0; i < 16 && a < 0; i++ {
		for j := i + 1; j < 16; j++ {
			if DecodeOwnerRank(i, 0, 2) == DecodeOwnerRank(j, 0, 2) {
				a, b = i, j
				break search
			}
		}
	}
	if a < 0 {
		t.Fatal("no colliding owner pair found")
	}
	w, err := NewWeights(Tiny(4))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(w, 2, WithKVCapacity(5))
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4} // 2 rows per rank per layer
	for _, seq := range []int{a, b} {
		if _, err := c.Prefill(seq, prompt, perf.PassKV); err != nil {
			t.Fatal(err)
		}
	}
	// Owner rank sits at 4/5 per layer; two decode appends cannot fit.
	var ce *CapacityError
	_, err = c.DecodeBatch([]int{a, b}, []int{1, 1})
	if !errors.As(err, &ce) {
		t.Fatalf("expected CapacityError, got %v", err)
	}
	if len(ce.Seqs) != 1 || ce.Seqs[0] != b {
		t.Fatalf("offenders = %v, want [%d] (batch-order survivor keeps its slot)", ce.Seqs, b)
	}
	// Nothing was appended; shedding the offender lets the rest decode.
	if _, err := c.DecodeBatch([]int{a}, []int{1}); err != nil {
		t.Fatalf("survivor decode failed: %v", err)
	}
}

// TestAutoVariantResolution pins the cluster-level Eq. 1 resolution: Tiny's
// threshold is 2·NKV/NH = 1, so only a cold chunk (P = 0) selects pass-KV.
func TestAutoVariantResolution(t *testing.T) {
	cfg := Tiny(1)
	if got := perf.ChooseVariant(cfg.Model, 8, 0); got != perf.PassKV {
		t.Fatalf("cold chunk chose %v, want pass-KV", got)
	}
	if got := perf.ChooseVariant(cfg.Model, 8, 8); got != perf.PassQ {
		t.Fatalf("warm chunk chose %v, want pass-Q", got)
	}
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Auto must execute end to end through prefill and generate.
	if _, err := c.Prefill(1, []int{1, 2, 3, 4}, perf.Auto); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prefill(1, []int{5, 6, 7, 8}, perf.Auto); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(1, 3); err != nil {
		t.Fatal(err)
	}
}
