package transformer

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/simd"
)

// The parallel+SIMD forward pass must be bit-identical to the serial scalar
// reference — vector dot disabled, pool width 1, the seed engine's exact
// arithmetic — at every worker width, across the whole serving surface:
// cold chunked prefill, warm prefix-adopted prefill, and fused batch decode
// (run under -race in CI, which also hunts pool/ring data races).
func TestForwardBitIdenticalToScalarSerialReference(t *testing.T) {
	for _, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
		t.Run(v.String(), func(t *testing.T) {
			prevSIMD := simd.SetEnabled(false)
			oldW := parallel.SetWorkers(1)
			defer func() {
				simd.SetEnabled(prevSIMD)
				parallel.SetWorkers(oldW)
			}()
			ref := runParallelScenario(t, 2, v)
			simd.SetEnabled(prevSIMD)
			for _, workers := range []int{1, 2, 8} {
				parallel.SetWorkers(workers)
				got := runParallelScenario(t, 2, v)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d produced %d logit vectors, scalar serial %d", workers, len(got), len(ref))
				}
				for i := range got {
					requireExact(t, got[i], ref[i], fmt.Sprintf("simd workers=%d vector %d", workers, i))
				}
			}
		})
	}
}

// Ring overlap must be externally invisible through the full TCP stack:
// logits, decode streams, and the cluster's modeled per-link communication
// accounting are exactly equal with overlap on and off. Wire-level counters
// are excluded — the TCP transport's heartbeats make raw wire bytes
// legitimately nondeterministic — but the modeled bytes the paper's cost
// model tracks must match to the last byte.
func TestDistributedOverlapParity(t *testing.T) {
	cfg := Tiny(41)
	scenario := func() ([][]float32, Telemetry) {
		c := startLoopbackCluster(t, cfg, 2, 0)
		prompt := make([]int, 24)
		for i := range prompt {
			prompt[i] = (i*7 + 2) % cfg.Model.VocabSize
		}
		var all [][]float32
		all = append(all, chunkedPrefill(t, c, 1, prompt, 8, perf.PassKV)...)
		all = append(all, chunkedPrefill(t, c, 2, prompt[:16], 8, perf.PassQ)...)
		toks := []int{3, 5}
		for step := 0; step < 3; step++ {
			batch, err := c.DecodeBatch([]int{1, 2}, toks)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, batch...)
			toks[0] = Argmax(batch[0])
			toks[1] = Argmax(batch[1])
		}
		tel, err := c.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		return all, tel
	}

	prev := ring.SetOverlap(false)
	defer ring.SetOverlap(prev)
	syncLogits, syncTel := scenario()
	ring.SetOverlap(true)
	ovLogits, ovTel := scenario()

	sameLogits(t, "overlap vs synchronous", syncLogits, ovLogits)
	if !reflect.DeepEqual(syncTel.Comm, ovTel.Comm) {
		t.Fatalf("modeled comm totals differ:\nsync:    %+v\noverlap: %+v", syncTel.Comm, ovTel.Comm)
	}
	if len(syncTel.Links) != len(ovTel.Links) {
		t.Fatalf("link count differs: %d vs %d", len(syncTel.Links), len(ovTel.Links))
	}
	for i := range syncTel.Links {
		a, b := syncTel.Links[i], ovTel.Links[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.Messages != b.Messages || a.Bytes != b.Bytes {
			t.Fatalf("modeled link %d accounting differs:\nsync:    %+v\noverlap: %+v", i, a, b)
		}
	}
}
