package transformer

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
)

// startLoopbackCluster spins up n worker ranks as goroutines, each with its
// own Weights replica and its own TCP transport endpoint on 127.0.0.1 —
// the full distributed stack (wire codec, mesh rendezvous, control plane)
// minus process isolation — and returns the connected coordinator Cluster.
func startLoopbackCluster(t *testing.T, cfg Config, n, kvCapacity int) *Cluster {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(WorkerConfig{
				Transformer: cfg, Rank: i, World: n,
				Listener: listeners[i], Addrs: addrs,
				KVCapacity:        kvCapacity,
				RendezvousTimeout: 20 * time.Second,
			})
		}(i)
	}
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ConnectCluster(w, ConnectConfig{Addrs: addrs, KVCapacity: kvCapacity, DialTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		wg.Wait()
		for i, err := range workerErrs {
			if err != nil {
				t.Errorf("worker %d exited with: %v", i, err)
			}
		}
	})
	return cl
}

func sameLogits(t *testing.T, what string, a, b [][]float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d logit rows", what, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s row %d: %d vs %d logits", what, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				t.Fatalf("%s row %d logit %d: %x vs %x (%g vs %g)",
					what, i, j, math.Float32bits(a[i][j]), math.Float32bits(b[i][j]), a[i][j], b[i][j])
			}
		}
	}
}

// driveBoth runs the same operation against the in-process reference and
// the distributed cluster and asserts exact float equality.
type pairedClusters struct {
	t    *testing.T
	ref  *Cluster // in-process
	dist *Cluster // TCP workers
}

func (p *pairedClusters) prefill(seq int, tokens []int, v perf.Variant, what string) {
	p.t.Helper()
	a, err := p.ref.Prefill(seq, tokens, v)
	if err != nil {
		p.t.Fatalf("%s (in-process): %v", what, err)
	}
	b, err := p.dist.Prefill(seq, tokens, v)
	if err != nil {
		p.t.Fatalf("%s (distributed): %v", what, err)
	}
	sameLogits(p.t, what, a, b)
}

func (p *pairedClusters) decodeBatch(seqs, tokens []int, what string) {
	p.t.Helper()
	a, err := p.ref.DecodeBatch(seqs, tokens)
	if err != nil {
		p.t.Fatalf("%s (in-process): %v", what, err)
	}
	b, err := p.dist.DecodeBatch(seqs, tokens)
	if err != nil {
		p.t.Fatalf("%s (distributed): %v", what, err)
	}
	sameLogits(p.t, what, a, b)
}

// TestDistributedBitIdentity is the subsystem's non-negotiable invariant: a
// cluster whose ranks live behind the TCP transport and wire codec produces
// exactly the float-for-float logits and decode streams of the in-process
// mailbox World — across pass-KV, pass-Q, perf.Auto, fused multi-session
// decode, and warm (prefix-adopted) prefill.
func TestDistributedBitIdentity(t *testing.T) {
	cfg := Tiny(7)
	const n = 3
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(w, n)
	if err != nil {
		t.Fatal(err)
	}
	dist := startLoopbackCluster(t, cfg, n, 0)
	p := &pairedClusters{t: t, ref: ref, dist: dist}

	prompt := func(len_, stride int) []int {
		out := make([]int, len_)
		for i := range out {
			out[i] = (i*stride + 3) % cfg.Model.VocabSize
		}
		return out
	}

	// Cold prefill on every ring variant, including a chunked (multi-call)
	// prefill so cached context P > 0 paths run.
	p.prefill(1, prompt(40, 5), perf.PassKV, "cold pass-KV prefill")
	p.prefill(2, prompt(33, 7), perf.PassQ, "cold pass-Q prefill")
	p.prefill(3, prompt(25, 11), perf.Auto, "cold auto prefill")
	p.prefill(1, prompt(17, 13), perf.PassKV, "second-turn pass-KV chunk")
	p.prefill(2, prompt(9, 3), perf.PassQ, "second-turn pass-Q chunk")

	// Fused multi-session decode: every sequence advances through one ring
	// sweep per step; owner rotation and merge order must replay exactly.
	toks := []int{5, 9, 13}
	for step := 0; step < 8; step++ {
		p.decodeBatch([]int{1, 2, 3}, toks, fmt.Sprintf("fused decode step %d", step))
		for i := range toks {
			toks[i] = (toks[i]*7 + step) % cfg.Model.VocabSize
		}
	}

	// Drop and re-prefill a sequence id: eviction must propagate to workers.
	ref.Drop(2)
	dist.Drop(2)
	p.prefill(2, prompt(21, 7), perf.Auto, "re-prefill after drop")

	// Warm prefix-cache path: chunk a donor's prompt at a canonical
	// boundary, detach the first chunk, drop the donor, adopt into a fresh
	// sequence, and prefill only the miss suffix. The adopted KV must replay
	// the donor's placement bit for bit on both deployments.
	donor := prompt(64, 9)
	p.prefill(10, donor[:32], perf.PassKV, "donor chunk 1")
	p.prefill(10, donor[32:], perf.PassKV, "donor chunk 2")
	refPre, err := ref.DetachPrefix(10, 32)
	if err != nil {
		t.Fatalf("detach (in-process): %v", err)
	}
	distPre, err := dist.DetachPrefix(10, 32)
	if err != nil {
		t.Fatalf("detach (distributed): %v", err)
	}
	if refPre.Tokens() != distPre.Tokens() {
		t.Fatalf("detached %d vs %d tokens", refPre.Tokens(), distPre.Tokens())
	}
	ref.Drop(10)
	dist.Drop(10)
	suffix := append(append([]int(nil), donor[32:]...), prompt(16, 5)...)
	aw, err := ref.PrefillFrom(11, refPre, suffix, perf.Auto)
	if err != nil {
		t.Fatalf("warm prefill (in-process): %v", err)
	}
	bw, err := dist.PrefillFrom(11, distPre, suffix, perf.Auto)
	if err != nil {
		t.Fatalf("warm prefill (distributed): %v", err)
	}
	sameLogits(t, "warm prefix-adopted prefill", aw, bw)
	wtoks := []int{2}
	for step := 0; step < 4; step++ {
		p.decodeBatch([]int{11}, wtoks, fmt.Sprintf("warm decode step %d", step))
		wtoks[0] = (wtoks[0]*5 + 1) % cfg.Model.VocabSize
	}
	refPre.Release()
	distPre.Release()

	// The modeled comm accounting is part of the contract too: both
	// deployments executed the identical collective schedule, so their
	// accounted bytes must agree exactly.
	refTel, err := ref.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	distTel, err := dist.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	for kind, msgs := range refTel.Comm.Messages {
		if distTel.Comm.Messages[kind] != msgs {
			t.Errorf("comm %s messages: in-process %d, distributed %d", kind, msgs, distTel.Comm.Messages[kind])
		}
		if distTel.Comm.Bytes[kind] != refTel.Comm.Bytes[kind] {
			t.Errorf("comm %s bytes: in-process %v, distributed %v", kind, refTel.Comm.Bytes[kind], distTel.Comm.Bytes[kind])
		}
	}
	if distTel.Transport != "tcp" {
		t.Errorf("distributed transport = %q", distTel.Transport)
	}
	var wireBytes int64
	for _, l := range distTel.Links {
		wireBytes += l.WireBytes
	}
	if wireBytes == 0 {
		t.Error("distributed cluster reports zero wire bytes")
	}
	for r, kv := range refTel.RankKV {
		if distTel.RankKV[r] != kv {
			t.Errorf("rank %d KV tokens: in-process %d, distributed %d", r, kv, distTel.RankKV[r])
		}
	}
}

// TestDistributedGenerateStream checks the decode-stream form of the
// guarantee: greedy generation token ids match exactly, end to end.
func TestDistributedGenerateStream(t *testing.T) {
	cfg := Tiny(3)
	const n = 3
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(w, n)
	if err != nil {
		t.Fatal(err)
	}
	dist := startLoopbackCluster(t, cfg, n, 0)
	prompt := []int{4, 19, 22, 7, 31, 2, 55, 40}
	a, err := ref.Generate(1, prompt, 24, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.Generate(1, prompt, 24, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decode streams diverge at step %d: %v vs %v", i, a, b)
		}
	}
}

// TestDistributedCapacityParity checks that the coordinator-side admission
// greedy (fed by control-plane capacity queries) sheds exactly the same
// sequences as the in-process precheck.
func TestDistributedCapacityParity(t *testing.T) {
	cfg := Tiny(5)
	const n, capTokens = 2, 24
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(w, n, WithKVCapacity(capTokens))
	if err != nil {
		t.Fatal(err)
	}
	dist := startLoopbackCluster(t, cfg, n, capTokens)

	run := func(c *Cluster) []error {
		var errs []error
		_, err := c.Prefill(1, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, perf.PassKV)
		errs = append(errs, err)
		// Second sequence overflows the per-rank budget.
		_, err = c.Prefill(2, make([]int, 40), perf.PassKV)
		errs = append(errs, err)
		return errs
	}
	refErrs := run(ref)
	distErrs := run(dist)
	for i := range refErrs {
		re, de := refErrs[i], distErrs[i]
		if (re == nil) != (de == nil) {
			t.Fatalf("op %d: in-process err %v, distributed err %v", i, re, de)
		}
		if re != nil && re.Error() != de.Error() {
			t.Fatalf("op %d: error text %q vs %q", i, re.Error(), de.Error())
		}
	}
	if refErrs[1] == nil {
		t.Fatal("overflow prefill unexpectedly fit")
	}
	if !strings.Contains(refErrs[1].Error(), "KV capacity exhausted") {
		t.Fatalf("overflow error = %v", refErrs[1])
	}
}

// TestDistributedWorkerErrorSurfaces checks the failure path: a worker-side
// execution error comes back as a named rank error on the coordinator, and
// the cluster keeps serving afterwards.
func TestDistributedWorkerErrorSurfaces(t *testing.T) {
	cfg := Tiny(2)
	dist := startLoopbackCluster(t, cfg, 2, 0)
	// Adopting an unknown prefix id fails on the workers, not the
	// coordinator (coordinator-side validation can't know worker registry
	// state for a handle forged from another cluster — so build the failure
	// via a released handle's id being unknown after a drop race).
	if _, err := dist.DetachPrefix(99, 5); err == nil {
		t.Fatal("detach of unknown sequence succeeded")
	}
	// The cluster still works after the error.
	if _, err := dist.Prefill(1, []int{1, 2, 3, 4, 5}, perf.PassKV); err != nil {
		t.Fatalf("prefill after failed detach: %v", err)
	}
}

// ---- 3-process loopback: the acceptance-criterion form of the test. ----

const rankWorkerEnv = "CP_TEST_RANK_WORKER"

// TestHelperRankWorker is not a test: it is the worker body the 3-process
// test execs (standard helper-process pattern). It rendezvouses over
// stdin/stdout.
func TestHelperRankWorker(t *testing.T) {
	env := os.Getenv(rankWorkerEnv)
	if env == "" {
		t.Skip("helper process body; set " + rankWorkerEnv)
	}
	parts := strings.Split(env, "/") // rank/world/seed
	rank, _ := strconv.Atoi(parts[0])
	world, _ := strconv.Atoi(parts[1])
	seed, _ := strconv.ParseInt(parts[2], 10, 64)
	err := RunWorker(WorkerConfig{
		Transformer: Tiny(seed), Rank: rank, World: world,
		Listen: "127.0.0.1:0", AddrOut: os.Stdout, AddrIn: os.Stdin,
		RendezvousTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("worker rank %d: %v", rank, err)
	}
}

// TestThreeProcessBitIdentity launches three cprank worker processes (the
// test binary re-execed in helper mode), connects a coordinator cluster to
// them over localhost TCP, and checks exact logit and decode-stream
// equality against the in-process reference — the ISSUE's acceptance
// criterion, with real address-space isolation.
func TestThreeProcessBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const n = 3
	const seed = 12
	cfg := Tiny(seed)

	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot re-exec test binary: %v", err)
	}
	type worker struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Reader
	}
	workers := make([]*worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-test.run=TestHelperRankWorker$", "-test.v=false")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d/%d/%d", rankWorkerEnv, i, n, seed))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		w := &worker{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)}
		workers[i] = w
		t.Cleanup(func() {
			w.cmd.Process.Kill()
			w.cmd.Wait()
		})
		// The worker prints its bound address before joining the mesh.
		for {
			line, err := w.out.ReadString('\n')
			if err != nil {
				t.Fatalf("worker %d exited before printing its address: %v", i, err)
			}
			if strings.HasPrefix(line, "CPRANK_ADDR ") {
				addrs[i] = strings.TrimSpace(strings.TrimPrefix(line, "CPRANK_ADDR "))
				break
			}
		}
	}
	list := strings.Join(addrs, ",") + "\n"
	for _, w := range workers {
		if _, err := io.WriteString(w.stdin, list); err != nil {
			t.Fatal(err)
		}
	}

	wts, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ConnectCluster(wts, ConnectConfig{Addrs: addrs, DialTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	refW, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(refW, n)
	if err != nil {
		t.Fatal(err)
	}

	prompt := []int{4, 19, 22, 7, 31, 2, 55, 40, 13, 26, 39, 52, 1, 14, 27, 33}
	for _, variant := range []perf.Variant{perf.PassKV, perf.PassQ, perf.Auto} {
		seq := 100 + int(variant)
		a, err := ref.Prefill(seq, prompt, variant)
		if err != nil {
			t.Fatalf("in-process %v prefill: %v", variant, err)
		}
		b, err := dist.Prefill(seq, prompt, variant)
		if err != nil {
			t.Fatalf("distributed %v prefill: %v", variant, err)
		}
		sameLogits(t, fmt.Sprintf("3-process %v prefill", variant), a, b)
	}
	a, err := ref.Generate(200, prompt, 16, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.Generate(200, prompt, 16, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("3-process decode stream diverges at %d: %v vs %v", i, a, b)
		}
	}

	if err := dist.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	for i, w := range workers {
		done := make(chan error, 1)
		go func() { done <- w.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exit: %v", i, err)
			}
		case <-time.After(20 * time.Second):
			t.Errorf("worker %d did not exit after shutdown", i)
		}
	}
}

// TestDistributedPlanePoisonedAfterFailure pins the control-plane ordering
// invariant: replies match commands by stream order, so after any control
// failure the plane must refuse further commands (fail fast, named cause)
// rather than risk reading a stale reply as the next command's result.
func TestDistributedPlanePoisonedAfterFailure(t *testing.T) {
	cfg := Tiny(4)
	dist := startLoopbackCluster(t, cfg, 2, 0)
	if _, err := dist.Prefill(1, []int{1, 2, 3}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	// Hang up the control plane out from under the cluster.
	dist.Close()
	_, err := dist.Prefill(2, []int{4, 5, 6}, perf.PassKV)
	if err == nil {
		t.Fatal("prefill succeeded over a closed control plane")
	}
	_, err2 := dist.Prefill(3, []int{7, 8, 9}, perf.PassKV)
	if err2 == nil {
		t.Fatal("second prefill succeeded over a poisoned plane")
	}
	if !strings.Contains(err2.Error(), "control plane is down") {
		t.Fatalf("poisoned-plane error = %v, want fail-fast with cause", err2)
	}
}
