package transformer

import (
	"fmt"
	"testing"

	"repro/internal/perf"
)

// TestReleasePrefixWhileAdopted is the refcount regression the ISSUE pins:
// releasing a prefix id that a live session adopted must not free the
// refcounted KV spans out from under the session, and a double release must
// be a no-op — on the in-process engines AND through the distributed
// registry path (worker-side span registries driven by ReleasePrefixCmd).
func TestReleasePrefixWhileAdopted(t *testing.T) {
	cfg := Tiny(13)
	const n = 2
	build := func(t *testing.T, dist bool) *Cluster {
		w, err := NewWeights(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dist {
			return startLoopbackCluster(t, cfg, n, 0)
		}
		c, err := NewCluster(w, n)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, mode := range []struct {
		name string
		dist bool
	}{{"in-process", false}, {"distributed", true}} {
		t.Run(mode.name, func(t *testing.T) {
			c := build(t, mode.dist)
			// Reference: the same history with the prefix handle kept alive,
			// so any premature free in the victim shows up as a logit diff.
			refW, err := NewWeights(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewCluster(refW, n)
			if err != nil {
				t.Fatal(err)
			}

			donor := make([]int, 32)
			for i := range donor {
				donor[i] = (i*7 + 3) % cfg.Model.VocabSize
			}
			run := func(c *Cluster, release bool) [][]float32 {
				if _, err := c.Prefill(1, donor, perf.PassKV); err != nil {
					t.Fatal(err)
				}
				pre, err := c.DetachPrefix(1, 32)
				if err != nil {
					t.Fatal(err)
				}
				c.Drop(1)
				// Seed a live session from the prefix, then release the
				// handle while the session still shares its pages.
				if err := c.AdoptPrefix(2, pre); err != nil {
					t.Fatal(err)
				}
				if release {
					pre.Release()
					pre.Release() // double release must be a no-op
				}
				// The session keeps decoding against the adopted KV; if the
				// release freed shared pages the logits diverge (or the
				// decode faults).
				var out [][]float32
				tok := 5
				for step := 0; step < 6; step++ {
					l, err := c.Decode(2, tok)
					if err != nil {
						t.Fatalf("decode step %d after release: %v", step, err)
					}
					out = append(out, l)
					tok = Argmax(l)
				}
				if !release {
					pre.Release()
				}
				return out
			}
			got := run(c, true)
			want := run(ref, false)
			for i := range want {
				sameLogits(t, fmt.Sprintf("decode %d with released prefix", i), [][]float32{want[i]}, [][]float32{got[i]})
			}

			// With the handle released and the session dropped, every page
			// is freed: per-rank KV occupancy returns to zero (no leak, no
			// double free).
			c.Drop(2)
			for r, kv := range c.RankCacheTokens() {
				if kv != 0 {
					t.Errorf("rank %d still holds %d KV tokens after release+drop", r, kv)
				}
			}
		})
	}
}
