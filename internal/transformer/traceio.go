package transformer

import (
	"sort"

	"repro/internal/comm/wire"
	"repro/internal/trace"
)

// This file converts between the trace package's in-memory span/series forms
// and their wire frames. Map-shaped fields (span args, series labels) travel
// as parallel key/value arrays with keys pre-sorted by the sender, so one
// span has exactly one encoding — the property every deterministic-export
// test leans on.

func spansToWire(spans []trace.Span) []wire.TraceSpan {
	out := make([]wire.TraceSpan, len(spans))
	for i, s := range spans {
		w := wire.TraceSpan{
			Name: s.Name, Cat: s.Cat, Rank: s.Rank, Seq: s.Seq,
			Epoch: s.Epoch, Index: s.Index, Start: s.Start, Dur: s.Dur,
		}
		if len(s.Args) > 0 {
			keys := make([]string, 0, len(s.Args))
			for k := range s.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			w.ArgKeys = keys
			w.ArgVals = make([]int64, len(keys))
			for j, k := range keys {
				w.ArgVals[j] = s.Args[k]
			}
		}
		out[i] = w
	}
	return out
}

func wireToSpans(ws []wire.TraceSpan) []trace.Span {
	out := make([]trace.Span, 0, len(ws))
	for _, w := range ws {
		s := trace.Span{
			Name: w.Name, Cat: w.Cat, Rank: w.Rank, Seq: w.Seq,
			Epoch: w.Epoch, Index: w.Index, Start: w.Start, Dur: w.Dur,
		}
		if len(w.ArgKeys) > 0 && len(w.ArgKeys) == len(w.ArgVals) {
			s.Args = make(map[string]int64, len(w.ArgKeys))
			for j, k := range w.ArgKeys {
				s.Args[k] = w.ArgVals[j]
			}
		}
		out = append(out, s)
	}
	return out
}

func snapsToWire(snaps []trace.SeriesSnap) []wire.TraceSeries {
	out := make([]wire.TraceSeries, len(snaps))
	for i, sn := range snaps {
		w := wire.TraceSeries{
			Name: sn.Name, Kind: uint8(sn.Kind),
			Value: sn.Value, Count: sn.Count, Sum: sn.Sum,
		}
		if len(sn.Labels) > 0 {
			w.LabelKeys = make([]string, len(sn.Labels))
			w.LabelVals = make([]string, len(sn.Labels))
			for j, l := range sn.Labels {
				w.LabelKeys[j] = l.Key
				w.LabelVals[j] = l.Value
			}
		}
		if len(sn.Counts) > 0 {
			w.Counts = make([]int64, len(sn.Counts))
			for j, c := range sn.Counts {
				w.Counts[j] = int64(c)
			}
		}
		out[i] = w
	}
	return out
}

func wireToSnaps(ws []wire.TraceSeries) []trace.SeriesSnap {
	out := make([]trace.SeriesSnap, 0, len(ws))
	for _, w := range ws {
		if len(w.LabelKeys) != len(w.LabelVals) {
			continue // malformed; drop rather than invent labels
		}
		sn := trace.SeriesSnap{
			Name: w.Name, Kind: trace.Kind(w.Kind),
			Value: w.Value, Count: w.Count, Sum: w.Sum,
		}
		for j := range w.LabelKeys {
			sn.Labels = append(sn.Labels, trace.L(w.LabelKeys[j], w.LabelVals[j]))
		}
		if len(w.Counts) > 0 {
			sn.Counts = make([]uint64, len(w.Counts))
			for j, c := range w.Counts {
				sn.Counts[j] = uint64(c)
			}
		}
		out = append(out, sn)
	}
	return out
}
