package transformer

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
)

// replayLog drives a cluster through a prefill + greedy-decode history and
// records everything needed to replay it after a rebuild: the prompt, the
// decode input tokens in order, and every emitted logit row.
type replayLog struct {
	seq     int
	prompt  []int
	decoded []int // decode input tokens, in step order
}

// decodeSteps advances the sequence by n greedy steps starting from `next`,
// returning the logits of each step and the next token after the last.
func decodeSteps(t *testing.T, c *Cluster, seq, next, n int) ([][]float32, int) {
	t.Helper()
	var out [][]float32
	for i := 0; i < n; i++ {
		l, err := c.Decode(seq, next)
		if err != nil {
			t.Fatalf("decode step %d of seq %d: %v", i, seq, err)
		}
		out = append(out, l)
		next = Argmax(l)
	}
	return out, next
}

// replay re-runs a recorded history on a freshly rebuilt cluster: the
// prompt as one prefill (mirroring how it was first submitted) and each
// decode input token as a decode step, exactly the scheduler's token-log
// discipline.
func (r *replayLog) replay(t *testing.T, c *Cluster, variant perf.Variant) {
	t.Helper()
	if _, err := c.Prefill(r.seq, r.prompt, variant); err != nil {
		t.Fatalf("replay prefill: %v", err)
	}
	for i, tok := range r.decoded {
		if _, err := c.Decode(r.seq, tok); err != nil {
			t.Fatalf("replay decode step %d: %v", i, err)
		}
	}
}

// TestInProcessRebuildBitIdentity is the in-process fault-injection form of
// the recovery acceptance test: a link fault surfaces as a Failures event
// and a decode error, Rebuild retires the incarnation, a token-log replay
// restores the session, and every post-recovery logit is bit-identical to a
// cluster that never failed.
func TestInProcessRebuildBitIdentity(t *testing.T) {
	cfg := Tiny(31)
	const n = 3
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(w, n)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Short receive timeout so the mid-ring failure surfaces quickly; the
	// deadline never fires on the healthy path, so bit-identity holds.
	victim, err := NewCluster(w2, n, WithRecvTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{4, 19, 22, 7, 31, 2, 55, 40, 13, 26, 39, 52}
	log := &replayLog{seq: 1, prompt: prompt}

	refLogits, err := ref.Prefill(1, prompt, perf.PassKV)
	if err != nil {
		t.Fatal(err)
	}
	vicLogits, err := victim.Prefill(1, prompt, perf.PassKV)
	if err != nil {
		t.Fatal(err)
	}
	sameLogits(t, "pre-failure prefill", refLogits, vicLogits)

	next := Argmax(refLogits[len(refLogits)-1])
	refSteps, refNext := decodeSteps(t, ref, 1, next, 4)
	vicSteps, vicNext := decodeSteps(t, victim, 1, next, 4)
	for i := range refSteps {
		sameLogits(t, fmt.Sprintf("pre-failure decode %d", i), [][]float32{refSteps[i]}, [][]float32{vicSteps[i]})
	}
	step := next
	for range refSteps {
		log.decoded = append(log.decoded, step)
		step = Argmax(vicSteps[len(log.decoded)-1])
	}

	// Kill a link: detection surfaces as an event, and the next decode
	// fails with a rank-attributed comm error.
	victim.FailLink(0, 1)
	select {
	case ev := <-victim.Failures():
		if ev.Cause == nil {
			t.Fatal("failure event without a cause")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no failure event after FailLink")
	}
	if _, err := victim.Decode(1, vicNext); err == nil {
		t.Fatal("decode over a failed link succeeded")
	}

	// Epoch rebuild + replay: the new incarnation starts empty, the replay
	// restores the session's KV with the original placement.
	if victim.Epoch() != 1 {
		t.Fatalf("epoch before rebuild = %d", victim.Epoch())
	}
	if err := victim.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if victim.Epoch() != 2 {
		t.Fatalf("epoch after rebuild = %d", victim.Epoch())
	}
	if victim.SeqLen(1) != 0 {
		t.Fatalf("rebuilt cluster still holds %d tokens for seq 1", victim.SeqLen(1))
	}
	log.replay(t, victim, perf.PassKV)
	if got, want := victim.SeqLen(1), len(prompt)+len(log.decoded); got != want {
		t.Fatalf("replayed seq length %d, want %d", got, want)
	}

	// The recovered stream continues bit-identically to the unfailed
	// reference.
	refPost, _ := decodeSteps(t, ref, 1, refNext, 6)
	vicPost, _ := decodeSteps(t, victim, 1, vicNext, 6)
	for i := range refPost {
		sameLogits(t, fmt.Sprintf("post-recovery decode %d", i), [][]float32{refPost[i]}, [][]float32{vicPost[i]})
	}
}

// startRejoinWorkers spins up n worker ranks as goroutines running the
// rejoin loop: when the coordinator hangs up for an epoch rebuild they
// rejoin the mesh at the next epoch instead of exiting.
func startRejoinWorkers(t *testing.T, cfg Config, n int) ([]string, *sync.WaitGroup, []error) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorkerLoop(WorkerConfig{
				Transformer: cfg, Rank: i, World: n,
				Listener: listeners[i], Addrs: addrs,
				Rejoin: true, MaxRejoins: 8,
				RendezvousTimeout: 20 * time.Second,
			})
		}(i)
	}
	return addrs, &wg, errs
}

// TestLoopbackEpochRebuild exercises the distributed recovery machinery
// minus process isolation: the coordinator's control plane dies, the rejoin
// workers re-mesh at epoch 2, and the rebuilt cluster replays to bit
// identity against an unfailed in-process reference.
func TestLoopbackEpochRebuild(t *testing.T) {
	cfg := Tiny(17)
	const n = 3
	addrs, wg, workerErrs := startRejoinWorkers(t, cfg, n)
	w, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ConnectCluster(w, ConnectConfig{Addrs: addrs, DialTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	refW, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(refW, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		dist.Close()
		wg.Wait()
		for i, err := range workerErrs {
			if err != nil {
				t.Errorf("worker %d exited with: %v", i, err)
			}
		}
	})

	prompt := []int{9, 3, 44, 17, 28, 5, 61, 12, 50, 7, 33, 20, 41, 2, 16, 38}
	log := &replayLog{seq: 5, prompt: prompt}
	a, err := ref.Prefill(5, prompt, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.Prefill(5, prompt, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	sameLogits(t, "pre-failure prefill", a, b)
	next := Argmax(a[len(a)-1])
	refSteps, refNext := decodeSteps(t, ref, 5, next, 3)
	distSteps, distNext := decodeSteps(t, dist, 5, next, 3)
	step := next
	for i := range distSteps {
		sameLogits(t, fmt.Sprintf("pre-failure decode %d", i), [][]float32{refSteps[i]}, [][]float32{distSteps[i]})
		log.decoded = append(log.decoded, step)
		step = Argmax(distSteps[i])
	}

	// Simulate a coordinator-visible cluster death: the control plane hangs
	// up. Workers observe the hangup and rejoin the mesh at epoch 2.
	dist.remote.hangup()
	if _, err := dist.Decode(5, distNext); err == nil {
		t.Fatal("decode over a hung-up control plane succeeded")
	}
	if err := dist.Rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if dist.Epoch() != 2 {
		t.Fatalf("epoch after rebuild = %d, want 2", dist.Epoch())
	}
	log.replay(t, dist, perf.Auto)

	refPost, _ := decodeSteps(t, ref, 5, refNext, 5)
	distPost, _ := decodeSteps(t, dist, 5, distNext, 5)
	for i := range refPost {
		sameLogits(t, fmt.Sprintf("post-rebuild decode %d", i), [][]float32{refPost[i]}, [][]float32{distPost[i]})
	}
	// The rebuilt plane serves telemetry (fresh counters, tcp transport).
	tel, err := dist.Telemetry()
	if err != nil {
		t.Fatalf("telemetry after rebuild: %v", err)
	}
	if tel.Transport != "tcp" {
		t.Fatalf("transport after rebuild = %q", tel.Transport)
	}
}

// ---- exec-based kill: the acceptance-criterion form of the test. ----

const rejoinWorkerEnv = "CP_TEST_REJOIN_WORKER"
const rejoinWorkerAddrsEnv = "CP_TEST_REJOIN_ADDRS"

// TestHelperRejoinWorker is not a test: it is the rejoin-worker body the
// kill-recovery test execs. With CP_TEST_REJOIN_ADDRS set it joins a known
// address list directly (how a respawned replacement rank starts);
// otherwise it rendezvouses over stdin/stdout.
func TestHelperRejoinWorker(t *testing.T) {
	env := os.Getenv(rejoinWorkerEnv)
	if env == "" {
		t.Skip("helper process body; set " + rejoinWorkerEnv)
	}
	parts := strings.Split(env, "/") // rank/world/seed
	rank, _ := strconv.Atoi(parts[0])
	world, _ := strconv.Atoi(parts[1])
	seed, _ := strconv.ParseInt(parts[2], 10, 64)
	cfg := WorkerConfig{
		Transformer: Tiny(seed), Rank: rank, World: world,
		Rejoin: true, MaxRejoins: 8,
		RendezvousTimeout: 30 * time.Second,
	}
	if addrs := os.Getenv(rejoinWorkerAddrsEnv); addrs != "" {
		cfg.Addrs = strings.Split(addrs, ",")
		cfg.Listen = cfg.Addrs[rank]
	} else {
		cfg.Listen = "127.0.0.1:0"
		cfg.AddrOut = os.Stdout
		cfg.AddrIn = os.Stdin
	}
	if err := RunWorkerLoop(cfg); err != nil {
		t.Fatalf("rejoin worker rank %d: %v", rank, err)
	}
}

// TestExecKillRankRecovery is the ISSUE's kill-a-real-process acceptance
// test: three rejoin workers in separate OS processes serve a session
// mid-decode; one is SIGKILLed; the survivors report the dead peer; a
// replacement process is spawned cold (it adopts the new epoch at
// handshake); the coordinator rebuilds and replays; and the recovered
// decode stream is bit-identical to a cluster that never failed.
func TestExecKillRankRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const n = 3
	const seed = 23
	cfg := Tiny(seed)
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot re-exec test binary: %v", err)
	}
	spawn := func(rank int, addrs string) (*exec.Cmd, io.WriteCloser, *bufio.Reader) {
		cmd := exec.Command(exe, "-test.run=TestHelperRejoinWorker$", "-test.v=false")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d/%d/%d", rejoinWorkerEnv, rank, n, seed))
		if addrs != "" {
			cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%s", rejoinWorkerAddrsEnv, addrs))
		}
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", rank, err)
		}
		return cmd, stdin, bufio.NewReader(stdout)
	}
	cmds := make([]*exec.Cmd, n)
	stdins := make([]io.WriteCloser, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cmd, stdin, out := spawn(i, "")
		cmds[i], stdins[i] = cmd, stdin
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		for {
			line, err := out.ReadString('\n')
			if err != nil {
				t.Fatalf("worker %d exited before printing its address: %v", i, err)
			}
			if strings.HasPrefix(line, "CPRANK_ADDR ") {
				addrs[i] = strings.TrimSpace(strings.TrimPrefix(line, "CPRANK_ADDR "))
				break
			}
		}
		// Surface the helper's test output (t.Fatalf goes to its stdout, not
		// stderr) so a silent worker death is diagnosable.
		go io.Copy(os.Stderr, out)
	}
	list := strings.Join(addrs, ",") + "\n"
	for _, stdin := range stdins {
		if _, err := io.WriteString(stdin, list); err != nil {
			t.Fatal(err)
		}
	}

	wts, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ConnectCluster(wts, ConnectConfig{Addrs: addrs, DialTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	refW, err := NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(refW, n)
	if err != nil {
		t.Fatal(err)
	}

	prompt := []int{4, 19, 22, 7, 31, 2, 55, 40, 13, 26, 39, 52, 1, 14, 27, 33}
	log := &replayLog{seq: 9, prompt: prompt}
	a, err := ref.Prefill(9, prompt, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.Prefill(9, prompt, perf.Auto)
	if err != nil {
		t.Fatal(err)
	}
	sameLogits(t, "pre-kill prefill", a, b)
	next := Argmax(a[len(a)-1])
	_, refNext := decodeSteps(t, ref, 9, next, 3)
	distSteps, distNext := decodeSteps(t, dist, 9, next, 3)
	step := next
	for i := range distSteps {
		log.decoded = append(log.decoded, step)
		step = Argmax(distSteps[i])
	}

	// Kill rank 1 mid-stream, for real.
	if err := cmds[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[1].Wait()

	// Detection: a surviving worker notices the dead peer within a couple
	// of heartbeat periods and reports it on the control plane — while the
	// coordinator is completely idle.
	select {
	case ev := <-dist.Failures():
		t.Logf("failure event: rank %d: %v", ev.Peer, ev.Cause)
	case <-time.After(15 * time.Second):
		t.Fatal("no failure event after killing rank 1")
	}

	// Respawn the dead rank cold (epoch 1 default: it learns the current
	// epoch from its peers' handshakes) and rebuild on the next epoch.
	replacement, rin, _ := spawn(1, strings.Join(addrs, ","))
	defer rin.Close()
	t.Cleanup(func() {
		replacement.Process.Kill()
		replacement.Wait()
	})
	if err := dist.Rebuild(); err != nil {
		t.Fatalf("rebuild after kill: %v", err)
	}
	if dist.Epoch() != 2 {
		t.Fatalf("epoch after rebuild = %d, want 2", dist.Epoch())
	}
	log.replay(t, dist, perf.Auto)

	// The recovered stream is bit-identical to the never-failed reference.
	refPost, _ := decodeSteps(t, ref, 9, refNext, 6)
	distPost, _ := decodeSteps(t, dist, 9, distNext, 6)
	for i := range refPost {
		sameLogits(t, fmt.Sprintf("post-kill decode %d", i), [][]float32{refPost[i]}, [][]float32{distPost[i]})
	}

	// Orderly shutdown reaches the survivors and the replacement alike.
	if err := dist.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	for i, cmd := range []*exec.Cmd{cmds[0], cmds[2], replacement} {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exit: %v", i, err)
			}
		case <-time.After(20 * time.Second):
			t.Errorf("worker %d did not exit after shutdown", i)
		}
	}
}
