package transformer

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/perf"
)

// scenario runs the full serving surface on a fresh cluster — cold chunked
// prefill, warm (prefix-seeded) chunked prefill, and a decode tail — and
// returns every logit vector produced, in a fixed order.
func runParallelScenario(t *testing.T, ranks int, v perf.Variant) [][]float32 {
	t.Helper()
	const budget = 8
	w, err := NewWeights(Tiny(19))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	prompt := make([]int, 28)
	for i := range prompt {
		prompt[i] = (i*11 + 5) % w.Cfg.Model.VocabSize
	}
	var all [][]float32

	// Cold chunked prefill plus a few decode steps.
	all = append(all, chunkedPrefill(t, c, 1, prompt, budget, v)...)
	tok := 3
	for step := 0; step < 4; step++ {
		logits, err := c.Decode(1, tok)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, logits)
		tok = Argmax(logits)
	}

	// Warm path: detach the first two budget-aligned chunks of the donor,
	// drop it, seed a new session, prefill only the suffix, then decode.
	pre, err := c.DetachPrefix(1, 2*budget)
	if err != nil {
		t.Fatal(err)
	}
	c.Drop(1)
	if err := c.AdoptPrefix(2, pre); err != nil {
		t.Fatal(err)
	}
	all = append(all, chunkedPrefill(t, c, 2, prompt[2*budget:], budget, v)...)
	for step := 0; step < 3; step++ {
		logits, err := c.Decode(2, tok)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, logits)
		tok = Argmax(logits)
	}

	// A fused batch decode alongside a second resident sequence.
	if _, err := c.Prefill(7, prompt[:budget], v); err != nil {
		t.Fatal(err)
	}
	batch, err := c.DecodeBatch([]int{2, 7}, []int{tok, 9})
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, batch...)
	return all
}

// Kernel fan-out must be invisible in the results: every ring variant, the
// warm-prefill path, and batched decode produce bit-identical logits at 1,
// 2, and 8 workers (run under -race in CI, this also exercises the pool for
// data races against the rank goroutines).
func TestClusterBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, ranks := range []int{2, 3} {
		for _, v := range []perf.Variant{perf.PassKV, perf.PassQ, perf.Auto} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, v), func(t *testing.T) {
				old := parallel.SetWorkers(1)
				defer parallel.SetWorkers(old)
				serial := runParallelScenario(t, ranks, v)
				for _, workers := range []int{2, 8} {
					parallel.SetWorkers(workers)
					got := runParallelScenario(t, ranks, v)
					if len(got) != len(serial) {
						t.Fatalf("workers=%d produced %d logit vectors, serial %d", workers, len(got), len(serial))
					}
					for i := range got {
						requireExact(t, got[i], serial[i], fmt.Sprintf("workers=%d vector %d", workers, i))
					}
				}
			})
		}
	}
}

// Chunked prefill must extend each rank's assembled-KV mirror instead of
// re-concatenating the cached context: total copied rows stay linear in
// prompt tokens (layers x tokens), with zero mirror rebuilds — the cluster
// form of the zero-rebuild acceptance check.
func TestChunkedPrefillAssemblyIsLinear(t *testing.T) {
	const budget = 8
	w, err := NewWeights(Tiny(20))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
		t.Run(v.String(), func(t *testing.T) {
			c, err := NewCluster(w, 2)
			if err != nil {
				t.Fatal(err)
			}
			prompt := make([]int, 64)
			for i := range prompt {
				prompt[i] = (i*3 + 1) % w.Cfg.Model.VocabSize
			}
			var prevAppended int64
			layers := int64(w.Cfg.Model.Layers)
			for at := 0; at < len(prompt); at += budget {
				if _, err := c.Prefill(0, prompt[at:at+budget], v); err != nil {
					t.Fatal(err)
				}
				stats := c.AssemblyStats()
				if stats.Rebuilds != 0 || stats.RebuildRows != 0 {
					t.Fatalf("chunk at %d rebuilt the mirror: %+v", at, stats)
				}
				delta := stats.AppendedRows - prevAppended
				if want := layers * budget; delta != want {
					t.Fatalf("chunk at %d copied %d rows, want %d (chunk tokens x layers, independent of context %d)",
						at, delta, want, at)
				}
				prevAppended = stats.AppendedRows
			}

			// Decode: each step copies exactly the one appended row per layer
			// (on the owner rank), never the context.
			before := c.AssemblyStats().AppendedRows
			for step := 0; step < 3; step++ {
				if _, err := c.Decode(0, 5); err != nil {
					t.Fatal(err)
				}
			}
			after := c.AssemblyStats()
			if got, want := after.AppendedRows-before, 3*layers; got != want {
				t.Fatalf("3 decode steps copied %d rows, want %d", got, want)
			}
			if after.Rebuilds != 0 {
				t.Fatalf("decode rebuilt the mirror: %+v", after)
			}
		})
	}
}
