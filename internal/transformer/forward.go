package transformer

import (
	"fmt"

	"repro/internal/attention"
)

// Forward is the single-device reference: exact logits for every position
// of a full causal pass over the token sequence. It is the oracle the
// context-parallel Cluster is verified against.
func (w *Weights) Forward(tokens []int) ([][]float32, error) {
	n := len(tokens)
	if n == 0 {
		return nil, fmt.Errorf("transformer: empty sequence")
	}
	m := w.Cfg.Model
	hidden, err := w.embedTokens(tokens)
	if err != nil {
		return nil, err
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	for l := 0; l < m.Layers; l++ {
		q, k, v := w.projectQKV(l, hidden, n, pos)
		out, err := attention.GQA(q, k, v, attention.FullCausal(n))
		if err != nil {
			return nil, err
		}
		w.attnResidual(l, hidden, out.O)
		w.ffnResidual(l, hidden, n)
	}
	flat := w.logits(hidden, n)
	out := make([][]float32, n)
	for t := 0; t < n; t++ {
		out[t] = flat[t*m.VocabSize : (t+1)*m.VocabSize]
	}
	return out, nil
}

// Argmax returns the index of the largest logit (greedy decoding).
func Argmax(logits []float32) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// GenerateReference greedily extends a prompt for `steps` tokens using the
// reference Forward (recomputing the full sequence each step — the oracle
// trades speed for obvious correctness).
func (w *Weights) GenerateReference(prompt []int, steps int) ([]int, error) {
	seq := append([]int(nil), prompt...)
	for i := 0; i < steps; i++ {
		logits, err := w.Forward(seq)
		if err != nil {
			return nil, err
		}
		seq = append(seq, Argmax(logits[len(seq)-1]))
	}
	return seq[len(prompt):], nil
}
