package transformer

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/comm/transport"
)

// This file is the cluster half of the fault-tolerance subsystem: failure
// detection surfaced as events, and epoch-based rebuild after a rank dies.
//
// The model is deliberately coarse: any rank failure retires the whole
// incarnation. CP shards every sequence's KV across all ranks, so one dead
// rank makes every resident sequence (and every cached prefix) incomplete —
// there is nothing worth salvaging rank by rank. Instead the coordinator
// bumps the epoch, the surviving workers rejoin the mesh with fresh engines
// (cprank -rejoin), the dead rank is respawned by its supervisor, and the
// serving layer replays each live session's token log through the normal
// prefill/decode paths. Because chunk boundaries, sharding plans, and decode
// owner rotation are all pure functions of absolute position, the replayed
// KV placement — and therefore every post-recovery logit — is bit-identical
// to a cluster that never failed.

// Failures surfaces detected cluster faults as asynchronous events: dead
// worker control connections, worker-reported peer-link failures
// (wire.FailureNote), and injected transport faults. The channel is stable
// across rebuilds — subscribe once. Events are hints: the consumer is
// expected to quiesce and call Rebuild (directly or via the serving layer's
// recovery), not to attribute blame from the event alone. The first call
// starts the forwarding pump; an unwatched cluster spawns no goroutine.
func (c *Cluster) Failures() <-chan transport.FailureEvent {
	c.eventsMu.Lock()
	defer c.eventsMu.Unlock()
	if !c.pumping {
		c.pumping = true
		pumpEvents(c.events, c.eventSrc, c.srcEpoch)
	}
	return c.events
}

// Epoch returns the cluster incarnation: 1 at construction, +1 per rebuild.
func (c *Cluster) Epoch() uint64 { return c.epoch }

// setEventSource records the current incarnation's failure-event source
// (the in-process transport's channel, or the control plane's) and, if a
// watcher already subscribed, pumps it into the stable events channel. Each
// pump ends when its source closes — the old incarnation's teardown — and
// stamps its events with the incarnation's epoch, so a consumer can tell a
// fresh failure from a retired incarnation's death throes.
func (c *Cluster) setEventSource(src <-chan transport.FailureEvent, epoch uint64) {
	c.eventsMu.Lock()
	defer c.eventsMu.Unlock()
	c.eventSrc = src
	c.srcEpoch = epoch
	if c.pumping {
		pumpEvents(c.events, src, epoch)
	}
}

// pumpEvents forwards a source channel into the stable events channel until
// the source closes, stamping each event with the source incarnation's
// epoch. Forwarding never blocks: a full channel already tells the consumer
// everything an extra event would.
func pumpEvents(dst chan transport.FailureEvent, src <-chan transport.FailureEvent, epoch uint64) {
	if src == nil {
		return
	}
	go func() {
		for ev := range src {
			ev.Epoch = epoch
			select {
			case dst <- ev:
			default:
			}
		}
	}()
}

// Rebuild retires the current incarnation and starts the next one: all rank
// state (KV caches, block mirrors, prefix registries, comm counters) is
// discarded, seqLens and decode rotation reset, and the epoch increments.
//
// In-process, that means fresh engines over a fresh World. Distributed, the
// old control plane is hung up (surviving workers see the hangup — or
// already saw the dead peer — and rejoin the mesh at the next epoch with
// fresh engines; the dead rank's process is respawned by whatever
// supervises it) and a new plane is dialed at the bumped epoch. Handshakes
// from the old incarnation are rejected as stale by every peer.
//
// Rebuild does not replay anything itself: callers that want sessions back
// re-prefill from their token logs (the serving scheduler does this), which
// is what makes recovery bit-identical rather than best-effort.
func (c *Cluster) Rebuild() error {
	c.seqLens = make(map[int]int)
	c.decodeSteps = make(map[int]int)
	if c.remote == nil {
		c.epoch++
		// Close the old world's transport so its event pump terminates, then
		// stand up a fresh mailbox world (which also clears injected faults)
		// and fresh engines.
		c.world.Transport().Close()
		c.world = comm.NewWorld(c.n, c.opts.commOpts...)
		engines := make([]*rankEngine, 0, c.n)
		for r := 0; r < c.n; r++ {
			e, err := newRankEngine(c.W, c.kvCapacity, c.epoch, c.rec)
			if err != nil {
				return fmt.Errorf("transformer: rebuild rank %d: %w", r, err)
			}
			engines = append(engines, e)
		}
		c.engines = engines
		c.setEventSource(c.world.Failures(), c.epoch)
		return nil
	}
	// Hang up the old plane first: a surviving worker that has not yet
	// noticed the dead peer notices the coordinator hangup instead, and
	// either way rejoins the mesh at the next epoch.
	c.remote.hangup()
	plane, epoch, err := dialPlane(c.W, c.connCfg, c.epoch+1)
	if err != nil {
		// The old plane stays hung up; every cluster operation keeps failing
		// until a later Rebuild succeeds.
		c.remote.poison(fmt.Errorf("transformer: rebuild failed: %w", err))
		return err
	}
	c.epoch = epoch
	c.remote = plane
	c.setEventSource(plane.events, epoch)
	return nil
}
