// Package transformer builds a complete Llama-architecture decoder-only
// transformer on top of the context-parallel substrates: token embeddings,
// RMSNorm, rotary position embeddings, grouped-query attention, SwiGLU
// feed-forward blocks, and an output head. Two execution paths share one set
// of deterministic weights:
//
//   - Forward: a single-device reference that computes exact logits.
//   - Cluster: a context-parallel execution across simulated ranks where
//     tokens are load-balance sharded, every layer's attention runs the ring
//     pass-KV/pass-Q algorithms against per-layer per-rank KV caches, and
//     rotary embeddings are applied by *global* token position (the
//     correctness subtlety the paper's non-contiguous sharding introduces).
//
// The paper serves Llama3 405B; this package is the same architecture at
// laptop scale, which is what lets the repository demonstrate the system
// end-to-end: token ids in, identical logits out, distributed or not.
package transformer

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Config extends a model configuration with architecture constants.
type Config struct {
	Model    model.Config
	RoPEBase float64 // rotary base, 10000 in Llama
	NormEps  float64 // RMSNorm epsilon
	Seed     int64   // deterministic weight initialization
}

// Tiny returns a laptop-scale Llama-architecture configuration with the
// GQA ratio of the paper's models (NH > 2*NKV).
func Tiny(seed int64) Config {
	m := model.Config{
		Name:      "tiny-llama",
		Layers:    2,
		ModelDim:  32,
		FFNDim:    64,
		NumHeads:  4,
		NumKV:     2,
		HeadDim:   8,
		Params:    1e5,
		ElemBytes: 2,
		VocabSize: 64,
	}
	return Config{Model: m, RoPEBase: 10000, NormEps: 1e-5, Seed: seed}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Model.VocabSize <= 0 {
		return fmt.Errorf("transformer: non-positive vocab %d", c.Model.VocabSize)
	}
	if c.RoPEBase <= 1 {
		return fmt.Errorf("transformer: rope base %v must exceed 1", c.RoPEBase)
	}
	if c.NormEps <= 0 {
		return fmt.Errorf("transformer: norm eps %v must be positive", c.NormEps)
	}
	return nil
}

type layerWeights struct {
	attnNorm, ffnNorm []float32
	wq, wk, wv, wo    *tensor.Matrix
	wGate, wUp, wDown *tensor.Matrix
}

// Weights holds one model's parameters, shared by the reference and
// distributed paths (every CP rank replicates weights, as in the paper
// where CP does not shard parameters).
type Weights struct {
	Cfg    Config
	embed  *tensor.Matrix // [vocab, D]
	layers []*layerWeights
	norm   []float32
	head   *tensor.Matrix // [vocab, D]
}

// NewWeights initializes deterministic random weights from cfg.Seed.
func NewWeights(cfg Config) (*Weights, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.Model
	ones := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	w := &Weights{
		Cfg:   cfg,
		embed: tensor.RandMatrix(rng, m.VocabSize, m.ModelDim),
		norm:  ones(m.ModelDim),
		head:  tensor.RandMatrix(rng, m.VocabSize, m.ModelDim),
	}
	for l := 0; l < m.Layers; l++ {
		w.layers = append(w.layers, &layerWeights{
			attnNorm: ones(m.ModelDim),
			ffnNorm:  ones(m.ModelDim),
			wq:       tensor.RandMatrix(rng, m.NumHeads*m.HeadDim, m.ModelDim),
			wk:       tensor.RandMatrix(rng, m.NumKV*m.HeadDim, m.ModelDim),
			wv:       tensor.RandMatrix(rng, m.NumKV*m.HeadDim, m.ModelDim),
			wo:       tensor.RandMatrix(rng, m.ModelDim, m.NumHeads*m.HeadDim),
			wGate:    tensor.RandMatrix(rng, m.FFNDim, m.ModelDim),
			wUp:      tensor.RandMatrix(rng, m.FFNDim, m.ModelDim),
			wDown:    tensor.RandMatrix(rng, m.ModelDim, m.FFNDim),
		})
	}
	return w, nil
}

// projectQKV computes the layer's query/key/value tensors for a block of
// hidden rows, applying RMSNorm first and RoPE at the given global
// positions. Rows whose position is negative (padding) are rotated at 0 and
// masked out downstream.
func (w *Weights) projectQKV(l int, hidden []float32, tokens int, pos []int) (q, k, v *tensor.Tensor) {
	m := w.Cfg.Model
	lw := w.layers[l]
	normed := make([]float32, len(hidden))
	for t := 0; t < tokens; t++ {
		copy(normed[t*m.ModelDim:(t+1)*m.ModelDim],
			tensor.RMSNorm(hidden[t*m.ModelDim:(t+1)*m.ModelDim], lw.attnNorm, w.Cfg.NormEps))
	}
	qf := lw.wq.ApplyRows(normed, tokens)
	kf := lw.wk.ApplyRows(normed, tokens)
	vf := lw.wv.ApplyRows(normed, tokens)
	q, _ = tensor.FromData(tokens, m.NumHeads, m.HeadDim, qf)
	k, _ = tensor.FromData(tokens, m.NumKV, m.HeadDim, kf)
	v, _ = tensor.FromData(tokens, m.NumKV, m.HeadDim, vf)
	for t := 0; t < tokens; t++ {
		p := 0
		if pos[t] >= 0 {
			p = pos[t]
		}
		for h := 0; h < m.NumHeads; h++ {
			tensor.RoPE(q.Row(t, h), p, w.Cfg.RoPEBase)
		}
		for h := 0; h < m.NumKV; h++ {
			tensor.RoPE(k.Row(t, h), p, w.Cfg.RoPEBase)
		}
	}
	return q, k, v
}

// attnResidual adds the attention block's output projection into hidden.
func (w *Weights) attnResidual(l int, hidden []float32, attnOut *tensor.Tensor) {
	m := w.Cfg.Model
	lw := w.layers[l]
	flat := attnOut.Data // [tokens, NH*DH] row-major already
	proj := lw.wo.ApplyRows(flat, attnOut.Tokens)
	for i := range proj {
		hidden[i] += proj[i]
	}
	_ = m
}

// ffnResidual applies the SwiGLU feed-forward block with residual.
func (w *Weights) ffnResidual(l int, hidden []float32, tokens int) {
	m := w.Cfg.Model
	lw := w.layers[l]
	for t := 0; t < tokens; t++ {
		row := hidden[t*m.ModelDim : (t+1)*m.ModelDim]
		normed := tensor.RMSNorm(row, lw.ffnNorm, w.Cfg.NormEps)
		gate := make([]float32, m.FFNDim)
		up := make([]float32, m.FFNDim)
		lw.wGate.MulVec(gate, normed)
		lw.wUp.MulVec(up, normed)
		for i := range gate {
			gate[i] = tensor.SiLU(gate[i]) * up[i]
		}
		down := make([]float32, m.ModelDim)
		lw.wDown.MulVec(down, gate)
		for i := range down {
			row[i] += down[i]
		}
	}
}

// logits computes the output head for a block of hidden rows.
func (w *Weights) logits(hidden []float32, tokens int) []float32 {
	m := w.Cfg.Model
	normed := make([]float32, len(hidden))
	for t := 0; t < tokens; t++ {
		copy(normed[t*m.ModelDim:(t+1)*m.ModelDim],
			tensor.RMSNorm(hidden[t*m.ModelDim:(t+1)*m.ModelDim], w.norm, w.Cfg.NormEps))
	}
	return w.head.ApplyRows(normed, tokens)
}

// embedTokens returns the flat [tokens, D] embedding block; id -1 (padding)
// embeds to zero.
func (w *Weights) embedTokens(ids []int) ([]float32, error) {
	m := w.Cfg.Model
	out := make([]float32, len(ids)*m.ModelDim)
	for t, id := range ids {
		if id == -1 {
			continue
		}
		if id < 0 || id >= m.VocabSize {
			return nil, fmt.Errorf("transformer: token %d outside vocab %d", id, m.VocabSize)
		}
		copy(out[t*m.ModelDim:(t+1)*m.ModelDim], w.embed.Row(id))
	}
	return out, nil
}
