// Package transformer builds a complete Llama-architecture decoder-only
// transformer on top of the context-parallel substrates: token embeddings,
// RMSNorm, rotary position embeddings, grouped-query attention, SwiGLU
// feed-forward blocks, and an output head. Two execution paths share one set
// of deterministic weights:
//
//   - Forward: a single-device reference that computes exact logits.
//   - Cluster: a context-parallel execution across simulated ranks where
//     tokens are load-balance sharded, every layer's attention runs the ring
//     pass-KV/pass-Q algorithms against per-layer per-rank KV caches, and
//     rotary embeddings are applied by *global* token position (the
//     correctness subtlety the paper's non-contiguous sharding introduces).
//
// The paper serves Llama3 405B; this package is the same architecture at
// laptop scale, which is what lets the repository demonstrate the system
// end-to-end: token ids in, identical logits out, distributed or not.
package transformer

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Config extends a model configuration with architecture constants.
type Config struct {
	Model    model.Config
	RoPEBase float64 // rotary base, 10000 in Llama
	NormEps  float64 // RMSNorm epsilon
	Seed     int64   // deterministic weight initialization
}

// Tiny returns a laptop-scale Llama-architecture configuration with the
// GQA ratio of the paper's models (NH > 2*NKV).
func Tiny(seed int64) Config {
	m := model.Config{
		Name:      "tiny-llama",
		Layers:    2,
		ModelDim:  32,
		FFNDim:    64,
		NumHeads:  4,
		NumKV:     2,
		HeadDim:   8,
		Params:    1e5,
		ElemBytes: 2,
		VocabSize: 64,
	}
	return Config{Model: m, RoPEBase: 10000, NormEps: 1e-5, Seed: seed}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Model.VocabSize <= 0 {
		return fmt.Errorf("transformer: non-positive vocab %d", c.Model.VocabSize)
	}
	if c.RoPEBase <= 1 {
		return fmt.Errorf("transformer: rope base %v must exceed 1", c.RoPEBase)
	}
	if c.NormEps <= 0 {
		return fmt.Errorf("transformer: norm eps %v must be positive", c.NormEps)
	}
	return nil
}

type layerWeights struct {
	attnNorm, ffnNorm []float32
	wq, wk, wv, wo    *tensor.Matrix
	wGate, wUp, wDown *tensor.Matrix
}

// Weights holds one model's parameters, shared by the reference and
// distributed paths (every CP rank replicates weights, as in the paper
// where CP does not shard parameters).
type Weights struct {
	Cfg    Config
	embed  *tensor.Matrix // [vocab, D]
	layers []*layerWeights
	norm   []float32
	head   *tensor.Matrix // [vocab, D]
}

// NewWeights initializes deterministic random weights from cfg.Seed.
func NewWeights(cfg Config) (*Weights, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.Model
	ones := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	w := &Weights{
		Cfg:   cfg,
		embed: tensor.RandMatrix(rng, m.VocabSize, m.ModelDim),
		norm:  ones(m.ModelDim),
		head:  tensor.RandMatrix(rng, m.VocabSize, m.ModelDim),
	}
	for l := 0; l < m.Layers; l++ {
		w.layers = append(w.layers, &layerWeights{
			attnNorm: ones(m.ModelDim),
			ffnNorm:  ones(m.ModelDim),
			wq:       tensor.RandMatrix(rng, m.NumHeads*m.HeadDim, m.ModelDim),
			wk:       tensor.RandMatrix(rng, m.NumKV*m.HeadDim, m.ModelDim),
			wv:       tensor.RandMatrix(rng, m.NumKV*m.HeadDim, m.ModelDim),
			wo:       tensor.RandMatrix(rng, m.ModelDim, m.NumHeads*m.HeadDim),
			wGate:    tensor.RandMatrix(rng, m.FFNDim, m.ModelDim),
			wUp:      tensor.RandMatrix(rng, m.FFNDim, m.ModelDim),
			wDown:    tensor.RandMatrix(rng, m.ModelDim, m.FFNDim),
		})
	}
	return w, nil
}

// f32Pool recycles forward-pass scratch (normed rows, FFN activations, the
// attention output projection) so steady-state prefill and decode allocate
// nothing per call. The q/k/v projection outputs are deliberately NOT
// pooled: the in-process ring transport circulates those blocks by pointer,
// so a peer may still be reading one after this rank has advanced to the
// next layer.
var f32Pool = sync.Pool{New: func() any { return new([]float32) }}

func getF32(n int) *[]float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putF32(p *[]float32) { f32Pool.Put(p) }

// projectQKV computes the layer's query/key/value tensors for a block of
// hidden rows, applying RMSNorm first and RoPE at the given global
// positions. Rows whose position is negative (padding) are rotated at 0 and
// masked out downstream.
//
// The whole per-token chain — RMSNorm, the three projection matmuls, and
// the rotary rotation — is one fused sweep fanned over the shared worker
// pool, so no intermediate makes an extra pass through memory and every
// worker touches each token exactly once. Each token's outputs depend only
// on that token's hidden row, so parallel execution is bit-identical to
// serial at any worker width.
func (w *Weights) projectQKV(l int, hidden []float32, tokens int, pos []int) (q, k, v *tensor.Tensor) {
	m := w.Cfg.Model
	lw := w.layers[l]
	qRows, kvRows := m.NumHeads*m.HeadDim, m.NumKV*m.HeadDim
	qf := make([]float32, tokens*qRows)
	kf := make([]float32, tokens*kvRows)
	vf := make([]float32, tokens*kvRows)
	normp := getF32(tokens * m.ModelDim)
	defer putF32(normp)
	normed := *normp
	tensor.ForRows(tokens, m.ModelDim*(qRows+2*kvRows), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			row := normed[t*m.ModelDim : (t+1)*m.ModelDim]
			tensor.RMSNormInto(row, hidden[t*m.ModelDim:(t+1)*m.ModelDim], lw.attnNorm, w.Cfg.NormEps)
			lw.wq.MulVec(qf[t*qRows:(t+1)*qRows], row)
			lw.wk.MulVec(kf[t*kvRows:(t+1)*kvRows], row)
			lw.wv.MulVec(vf[t*kvRows:(t+1)*kvRows], row)
			p := 0
			if pos[t] >= 0 {
				p = pos[t]
			}
			for h := 0; h < m.NumHeads; h++ {
				tensor.RoPE(qf[t*qRows+h*m.HeadDim:t*qRows+(h+1)*m.HeadDim], p, w.Cfg.RoPEBase)
			}
			for h := 0; h < m.NumKV; h++ {
				tensor.RoPE(kf[t*kvRows+h*m.HeadDim:t*kvRows+(h+1)*m.HeadDim], p, w.Cfg.RoPEBase)
			}
		}
	})
	q, _ = tensor.FromData(tokens, m.NumHeads, m.HeadDim, qf)
	k, _ = tensor.FromData(tokens, m.NumKV, m.HeadDim, kf)
	v, _ = tensor.FromData(tokens, m.NumKV, m.HeadDim, vf)
	return q, k, v
}

// attnResidual adds the attention block's output projection into hidden.
// The projection runs through the row-blocked parallel matmul with pooled
// scratch; the residual add is a single cheap pass.
func (w *Weights) attnResidual(l int, hidden []float32, attnOut *tensor.Tensor) {
	m := w.Cfg.Model
	lw := w.layers[l]
	tokens := attnOut.Tokens
	projp := getF32(tokens * m.ModelDim)
	defer putF32(projp)
	proj := *projp
	lw.wo.ApplyRowsInto(proj, attnOut.Data, tokens)
	for i := range proj {
		hidden[i] += proj[i]
	}
}

// ffnResidual applies the SwiGLU feed-forward block with residual. The
// per-token chain — RMSNorm, gate and up matmuls, SiLU gating, down matmul,
// residual add — is one fused sweep over the worker pool; each worker chunk
// carries its own pooled scratch so the block allocates nothing in steady
// state. Token t writes only its own hidden row, so the sweep is
// bit-identical to the serial loop.
func (w *Weights) ffnResidual(l int, hidden []float32, tokens int) {
	m := w.Cfg.Model
	lw := w.layers[l]
	tensor.ForRows(tokens, 3*m.ModelDim*m.FFNDim, func(lo, hi int) {
		scratchp := getF32(2*m.FFNDim + 2*m.ModelDim)
		defer putF32(scratchp)
		scratch := *scratchp
		normed := scratch[:m.ModelDim]
		gate := scratch[m.ModelDim : m.ModelDim+m.FFNDim]
		up := scratch[m.ModelDim+m.FFNDim : m.ModelDim+2*m.FFNDim]
		down := scratch[m.ModelDim+2*m.FFNDim:]
		for t := lo; t < hi; t++ {
			row := hidden[t*m.ModelDim : (t+1)*m.ModelDim]
			tensor.RMSNormInto(normed, row, lw.ffnNorm, w.Cfg.NormEps)
			lw.wGate.MulVec(gate, normed)
			lw.wUp.MulVec(up, normed)
			for i := range gate {
				gate[i] = tensor.SiLU(gate[i]) * up[i]
			}
			lw.wDown.MulVec(down, gate)
			for i := range down {
				row[i] += down[i]
			}
		}
	})
}

// logits computes the output head for a block of hidden rows: a parallel
// per-token final-norm sweep into pooled scratch, then the row-blocked
// head matmul. The returned slice is freshly allocated — callers retain it
// (argmax, streaming) past the next forward step.
func (w *Weights) logits(hidden []float32, tokens int) []float32 {
	m := w.Cfg.Model
	normp := getF32(tokens * m.ModelDim)
	defer putF32(normp)
	normed := *normp
	tensor.ForRows(tokens, m.ModelDim, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			tensor.RMSNormInto(normed[t*m.ModelDim:(t+1)*m.ModelDim],
				hidden[t*m.ModelDim:(t+1)*m.ModelDim], w.norm, w.Cfg.NormEps)
		}
	})
	return w.head.ApplyRows(normed, tokens)
}

// embedTokens returns the flat [tokens, D] embedding block; id -1 (padding)
// embeds to zero.
func (w *Weights) embedTokens(ids []int) ([]float32, error) {
	m := w.Cfg.Model
	out := make([]float32, len(ids)*m.ModelDim)
	for t, id := range ids {
		if id == -1 {
			continue
		}
		if id < 0 || id >= m.VocabSize {
			return nil, fmt.Errorf("transformer: token %d outside vocab %d", id, m.VocabSize)
		}
		copy(out[t*m.ModelDim:(t+1)*m.ModelDim], w.embed.Row(id))
	}
	return out, nil
}
