package transformer

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
)

// Cluster executes the transformer across N context-parallel ranks: tokens
// are load-balance sharded, all non-attention computation runs locally on
// each rank's shard (CP keeps linear layers communication-free by sharding
// the token dimension), and every layer's attention runs the ring
// algorithms against per-layer per-rank persistent KV caches. Weights are
// replicated on every rank, as in the paper.
type Cluster struct {
	W     *Weights
	world *comm.World

	caches  [][]*kvcache.Cache // [rank][layer]
	seqLens map[int]int
	// decodeSteps counts completed decode steps per sequence. Owner rotation
	// is per-sequence rather than per-cluster so that a sequence's KV lands
	// on the same ranks whether it decodes alone or fused into a batch —
	// the property that makes batched serving bit-identical to the serial
	// single-session path.
	decodeSteps map[int]int
}

// ClusterOption configures a Cluster at construction time.
type ClusterOption func(*clusterOpts)

type clusterOpts struct {
	commOpts []comm.Option
}

// WithRecvTimeout sets the receive deadline of the cluster's comm.World, for
// soak tests and slow CI machines that outlast comm.DefaultRecvTimeout.
func WithRecvTimeout(d time.Duration) ClusterOption {
	return func(o *clusterOpts) {
		o.commOpts = append(o.commOpts, comm.WithRecvTimeout(d))
	}
}

// NewCluster builds an N-rank execution of the given weights.
func NewCluster(w *Weights, ranks int, opts ...ClusterOption) (*Cluster, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("transformer: non-positive rank count %d", ranks)
	}
	var co clusterOpts
	for _, opt := range opts {
		opt(&co)
	}
	m := w.Cfg.Model
	c := &Cluster{
		W:           w,
		world:       comm.NewWorld(ranks, co.commOpts...),
		seqLens:     make(map[int]int),
		decodeSteps: make(map[int]int),
	}
	for r := 0; r < ranks; r++ {
		var perLayer []*kvcache.Cache
		for l := 0; l < m.Layers; l++ {
			kc, err := kvcache.New(kvcache.Config{KVHeads: m.NumKV, HeadDim: m.HeadDim})
			if err != nil {
				return nil, err
			}
			perLayer = append(perLayer, kc)
		}
		c.caches = append(c.caches, perLayer)
	}
	return c, nil
}

// Ranks returns the CP group size.
func (c *Cluster) Ranks() int { return c.world.N }

// SeqLen returns the cached length of a sequence.
func (c *Cluster) SeqLen(seq int) int { return c.seqLens[seq] }

// CommStats returns cumulative traffic.
func (c *Cluster) CommStats() comm.Stats { return c.world.TotalStats() }

// RankCacheTokens returns per-rank cached tokens summed over layers.
func (c *Cluster) RankCacheTokens() []int {
	out := make([]int, c.world.N)
	for r, layers := range c.caches {
		for _, kc := range layers {
			out[r] += kc.TotalTokens()
		}
	}
	return out
}

// Prefill runs a full or partial prefill of new tokens for a sequence and
// returns the logits of every new position, in order.
func (c *Cluster) Prefill(seq int, tokens []int, variant perf.Variant) ([][]float32, error) {
	out, err := c.PrefillBatch([]int{seq}, [][]int{tokens}, variant)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// PrefillBatch runs a fused variable-sequence-length prefill (Figure 1's
// scenario at the whole-model level): every sequence is load-balance sharded
// independently, the batch's Q/K/V fuse into one ring pass per layer, and
// per-sequence logits come back in order. Sequences may be new or have
// persistent KV from earlier turns.
func (c *Cluster) PrefillBatch(seqIDs []int, tokens [][]int, variant perf.Variant) ([][][]float32, error) {
	if len(seqIDs) == 0 || len(seqIDs) != len(tokens) {
		return nil, fmt.Errorf("transformer: %d seq ids with %d token lists", len(seqIDs), len(tokens))
	}
	m := c.W.Cfg.Model
	lens := make([]int, len(seqIDs))
	seen := map[int]bool{}
	for i, toks := range tokens {
		if len(toks) == 0 {
			return nil, fmt.Errorf("transformer: empty prefill for sequence %d", seqIDs[i])
		}
		if seqIDs[i] < 0 {
			// Reject up front: the ring layer treats negative ids as
			// padding markers, and an error surfacing on one rank mid-ring
			// would leave its peers waiting for the receive timeout.
			return nil, fmt.Errorf("transformer: negative sequence id %d", seqIDs[i])
		}
		if seen[seqIDs[i]] {
			return nil, fmt.Errorf("transformer: duplicate sequence %d in batch", seqIDs[i])
		}
		seen[seqIDs[i]] = true
		lens[i] = len(toks)
		// Validate up front: an error surfacing on one rank mid-ring would
		// leave its peers waiting for the receive timeout.
		for pos, id := range toks {
			if id < 0 || id >= m.VocabSize {
				return nil, fmt.Errorf("transformer: token %d at position %d of sequence %d outside vocab %d",
					id, pos, seqIDs[i], m.VocabSize)
			}
		}
	}
	plan, err := sharding.NewBatchShard(lens, c.world.N)
	if err != nil {
		return nil, err
	}
	p := make([]int, len(seqIDs))
	for i, id := range seqIDs {
		p[i] = c.seqLens[id]
	}
	run := ring.PassKVPrefill
	if variant == perf.PassQ {
		run = ring.PassQPrefill
	}

	locals, err := comm.RunCollect(c.world, func(r *comm.Rank) (*tensor.Tensor, error) {
		lp := plan.LocalPositions(r.ID)
		ls := plan.LocalSeqs(r.ID)
		localLen := plan.LocalLen(r.ID)
		ids := make([]int, localLen)
		gpos := make([]int, localLen)
		for slot, pos := range lp {
			if pos == sharding.Pad {
				ids[slot] = -1
				gpos[slot] = -1
			} else {
				ids[slot] = tokens[ls[slot]][pos]
				gpos[slot] = p[ls[slot]] + pos
			}
		}
		hidden, err := c.W.embedTokens(ids)
		if err != nil {
			return nil, err
		}
		for l := 0; l < m.Layers; l++ {
			q, k, v := c.W.projectQKV(l, hidden, localLen, gpos)
			out, err := run(&ring.PrefillInput{
				Rank: r, Plan: plan, P: p, SeqIDs: seqIDs,
				Q: q, K: k, V: v,
				Cache: c.caches[r.ID][l], Elem: m.ElemBytes,
			})
			if err != nil {
				return nil, fmt.Errorf("layer %d: %w", l, err)
			}
			if err := ring.AppendLocalKV(c.caches[r.ID][l], plan, r.ID, p, seqIDs, k, v); err != nil {
				return nil, err
			}
			c.W.attnResidual(l, hidden, out.O)
			c.W.ffnResidual(l, hidden, localLen)
		}
		flat := c.W.logits(hidden, localLen)
		return tensor.FromData(localLen, 1, m.VocabSize, flat)
	})
	if err != nil {
		return nil, err
	}
	fused := plan.Unshard(locals)
	out := make([][][]float32, len(seqIDs))
	for i, id := range seqIDs {
		off := plan.SeqOffset(i)
		rows := make([][]float32, lens[i])
		for t := 0; t < lens[i]; t++ {
			rows[t] = fused.Row2D(off + t)
		}
		out[i] = rows
		c.seqLens[id] += lens[i]
	}
	return out, nil
}

// Decode generates the logits for one new token of a sequence using batched
// ring pass-Q decode on every layer. It is the batch-of-one special case of
// DecodeBatch.
func (c *Cluster) Decode(seq, token int) ([]float32, error) {
	out, err := c.DecodeBatch([]int{seq}, []int{token})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// DecodeBatch advances every listed sequence by one token in a single ring
// pass-Q sweep per layer (§3.6 batched decode at the whole-model level).
// Entry i feeds tokens[i] to seqs[i]; per-sequence logits come back in batch
// order. Token ownership rotates per sequence — sequence s's step-t token is
// owned by rank t mod N regardless of what else shares the batch — so the
// KV placement, and therefore the floating-point merge order, of every
// sequence is identical to a serial single-session execution. Non-owner
// ranks participate in every layer's ring attention while only owner ranks
// run embeddings, projections, FFN, and the output head for their tokens.
func (c *Cluster) DecodeBatch(seqs []int, tokens []int) ([][]float32, error) {
	b := len(seqs)
	if b == 0 || b != len(tokens) {
		return nil, fmt.Errorf("transformer: %d sequences with %d decode tokens", b, len(tokens))
	}
	m := c.W.Cfg.Model
	n := c.world.N
	seen := make(map[int]bool, b)
	for i, seq := range seqs {
		if seq < 0 {
			return nil, fmt.Errorf("transformer: negative sequence id %d", seq)
		}
		if _, ok := c.seqLens[seq]; !ok {
			return nil, fmt.Errorf("transformer: decode for unknown sequence %d", seq)
		}
		if seen[seq] {
			return nil, fmt.Errorf("transformer: duplicate sequence %d in decode batch", seq)
		}
		seen[seq] = true
		if tokens[i] < 0 || tokens[i] >= m.VocabSize {
			return nil, fmt.Errorf("transformer: decode token %d outside vocab %d", tokens[i], m.VocabSize)
		}
	}

	// Assign each batch entry to its owner rank and agree on a uniform
	// circulating block length (per-sequence rotation can collide owners).
	owned := make([][]ring.DecodeToken, n)
	ownedRows := make([][]int, n)
	for i, seq := range seqs {
		// Owner depends only on (seq, per-seq step) — never on batch
		// composition — so fused and serial execution place KV
		// identically, while distinct sequences at equal step counts
		// still spread across ranks instead of piling onto one.
		r := sharding.DecodeOwner(seqOwnerOffset(seq), c.decodeSteps[seq], n)
		owned[r] = append(owned[r], ring.DecodeToken{Seq: seq, Pos: c.seqLens[seq]})
		ownedRows[r] = append(ownedRows[r], i)
	}
	blockLen := 1
	for r := 0; r < n; r++ {
		if len(owned[r]) > blockLen {
			blockLen = len(owned[r])
		}
	}

	results, err := comm.RunCollect(c.world, func(r *comm.Rank) ([]float32, error) {
		mine := ownedRows[r.ID]
		var hidden []float32
		pos := make([]int, len(mine))
		if len(mine) > 0 {
			ids := make([]int, len(mine))
			for j, row := range mine {
				ids[j] = tokens[row]
				pos[j] = owned[r.ID][j].Pos
			}
			var err error
			hidden, err = c.W.embedTokens(ids)
			if err != nil {
				return nil, err
			}
		}
		for l := 0; l < m.Layers; l++ {
			in := &ring.DecodeInput{
				Rank: r, NumSeqs: b, BlockLen: blockLen,
				Owned: owned[r.ID],
				Q:     tensor.New(0, m.NumHeads, m.HeadDim),
				K:     tensor.New(0, m.NumKV, m.HeadDim),
				V:     tensor.New(0, m.NumKV, m.HeadDim),
				Cache: c.caches[r.ID][l], Elem: m.ElemBytes,
			}
			if len(mine) > 0 {
				in.Q, in.K, in.V = c.W.projectQKV(l, hidden, len(mine), pos)
			}
			out, err := ring.PassQDecode(in)
			if err != nil {
				return nil, fmt.Errorf("layer %d: %w", l, err)
			}
			if len(mine) > 0 {
				c.W.attnResidual(l, hidden, out.O)
				c.W.ffnResidual(l, hidden, len(mine))
			}
		}
		if len(mine) == 0 {
			return nil, nil
		}
		return c.W.logits(hidden, len(mine)), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float32, b)
	for r := 0; r < n; r++ {
		for j, row := range ownedRows[r] {
			out[row] = results[r][j*m.VocabSize : (j+1)*m.VocabSize]
		}
	}
	for _, seq := range seqs {
		c.seqLens[seq]++
		c.decodeSteps[seq]++
	}
	return out, nil
}

// seqOwnerOffset decorrelates owner rotation across sequence ids with a
// fixed integer hash (splitmix64 finalizer). Client-chosen session ids are
// often congruent mod N (100, 104, 108 on 4 ranks would otherwise share one
// owner forever); hashing breaks persistent collisions while keeping the
// offset a pure function of the id, which the bit-identity guarantee needs.
func seqOwnerOffset(seq int) int {
	x := uint64(seq)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x & 0x7fffffff)
}

// Drop evicts a sequence from every rank's per-layer cache and forgets its
// decode rotation state, freeing the admission slot it occupied.
func (c *Cluster) Drop(seq int) {
	for _, layers := range c.caches {
		for _, kc := range layers {
			kc.Drop(seq)
		}
	}
	delete(c.seqLens, seq)
	delete(c.decodeSteps, seq)
}

// Generate greedily extends a prompt: one distributed prefill, then
// `steps` distributed decode steps. Returns the generated token ids.
func (c *Cluster) Generate(seq int, prompt []int, steps int, variant perf.Variant) ([]int, error) {
	logits, err := c.Prefill(seq, prompt, variant)
	if err != nil {
		return nil, err
	}
	next := Argmax(logits[len(logits)-1])
	out := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, next)
		if i == steps-1 {
			break
		}
		l, err := c.Decode(seq, next)
		if err != nil {
			return nil, err
		}
		next = Argmax(l)
	}
	return out, nil
}
