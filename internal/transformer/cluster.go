package transformer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/comm"
	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Cluster executes the transformer across N context-parallel ranks: tokens
// are load-balance sharded, all non-attention computation runs locally on
// each rank's shard (CP keeps linear layers communication-free by sharding
// the token dimension), and every layer's attention runs the ring
// algorithms against per-layer per-rank persistent KV caches. Weights are
// replicated on every rank, as in the paper.
//
// Ranks live in one of two places, invisible to callers:
//
//   - In-process (NewCluster): every rank is a goroutine over the in-memory
//     mailbox transport — the seed engine's execution, unchanged.
//   - Distributed (ConnectCluster, remote.go): every rank is a cprank worker
//     process on a TCP mesh; this Cluster is the coordinator, driving the
//     identical per-rank engine code through control-plane command frames.
//
// Both paths produce bit-identical logits and decode streams: commands carry
// every derived quantity (positions, owners, resolved variants), engines are
// pure functions of the command stream, and the wire codec moves floats by
// exact bit pattern.
type Cluster struct {
	W *Weights

	n       int
	world   *comm.World   // in-process mode; nil when remote
	engines []*rankEngine // in-process mode; nil when remote
	remote  *remotePlane  // distributed mode; nil when in-process

	kvCapacity int

	// rec is the cluster's trace recorder (nil = tracing off). In-process
	// engines record into it directly; distributed workers stage locally and
	// SyncTrace drains their deltas into it over the control plane.
	rec *trace.Recorder

	// Rebuild inputs: the construction options (in-process) or connect
	// config (distributed) a fault-recovery rebuild replays, and the
	// cluster incarnation it bumps. events is the stable failure-event
	// fan-in — it survives rebuilds, so a watcher never has to resubscribe.
	// The pump from the current incarnation's source starts lazily on the
	// first Failures call (eventsMu guards pumping/eventSrc, since watchers
	// subscribe from their own goroutine): a cluster nobody watches spawns
	// no goroutine, so Close-less construction stays leak-free.
	opts     clusterOpts
	connCfg  ConnectConfig
	epoch    uint64
	events   chan transport.FailureEvent
	eventsMu sync.Mutex
	eventSrc <-chan transport.FailureEvent
	srcEpoch uint64
	pumping  bool

	seqLens map[int]int
	// decodeSteps counts completed decode steps per sequence. Owner rotation
	// is per-sequence rather than per-cluster so that a sequence's KV lands
	// on the same ranks whether it decodes alone or fused into a batch —
	// the property that makes batched serving bit-identical to the serial
	// single-session path.
	decodeSteps map[int]int
	prefixSeq   uint64
}

// ClusterOption configures a Cluster at construction time.
type ClusterOption func(*clusterOpts)

type clusterOpts struct {
	commOpts   []comm.Option
	kvCapacity int
	rec        *trace.Recorder
}

// WithTrace attaches a trace recorder: ring sweeps record per-phase timings
// and spans into it on every rank. Tracing observes wall clocks only — it
// cannot change a single output float; the engine's exact-equality tests
// pin that down.
func WithTrace(rec *trace.Recorder) ClusterOption {
	return func(o *clusterOpts) { o.rec = rec }
}

// WithRecvTimeout sets the receive deadline of the cluster's comm.World, for
// soak tests and slow CI machines that outlast comm.DefaultRecvTimeout.
func WithRecvTimeout(d time.Duration) ClusterOption {
	return func(o *clusterOpts) {
		o.commOpts = append(o.commOpts, comm.WithRecvTimeout(d))
	}
}

// WithKVCapacity caps every per-rank per-layer KV cache at the given token
// count — the simulated equivalent of each rank's HBM budget. Prefill and
// decode precheck the cap before entering a ring and fail with a
// CapacityError naming the sequences that do not fit, so a capacity fault
// never strands peer ranks mid-ring or leaves partial KV behind.
func WithKVCapacity(tokens int) ClusterOption {
	return func(o *clusterOpts) { o.kvCapacity = tokens }
}

// NewCluster builds an in-process N-rank execution of the given weights.
func NewCluster(w *Weights, ranks int, opts ...ClusterOption) (*Cluster, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("transformer: non-positive rank count %d", ranks)
	}
	var co clusterOpts
	for _, opt := range opts {
		opt(&co)
	}
	c := &Cluster{
		W:           w,
		n:           ranks,
		world:       comm.NewWorld(ranks, co.commOpts...),
		opts:        co,
		epoch:       1,
		kvCapacity:  co.kvCapacity,
		rec:         co.rec,
		seqLens:     make(map[int]int),
		decodeSteps: make(map[int]int),
		events:      make(chan transport.FailureEvent, ranks+2),
	}
	for r := 0; r < ranks; r++ {
		e, err := newRankEngine(w, co.kvCapacity, c.epoch, co.rec)
		if err != nil {
			return nil, err
		}
		c.engines = append(c.engines, e)
	}
	c.setEventSource(c.world.Failures(), c.epoch)
	return c, nil
}

// CapacityError reports the batch sequences whose KV append would exceed a
// rank's cache capacity. It is returned before any ring pass or cache
// mutation, so the caller can shed exactly the offending sequences and
// retry the rest — the batch members that fit were never touched.
type CapacityError struct {
	Seqs []int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("transformer: KV capacity exhausted for sequences %v", e.Seqs)
}

// Ranks returns the CP group size.
func (c *Cluster) Ranks() int { return c.n }

// FailLink injects a directed link fault into an in-process cluster's
// transport (the chaos hook recovery tests drive; mirrors
// comm.World.FailLink and surfaces on Failures). No-op on a distributed
// cluster — kill the worker process instead.
func (c *Cluster) FailLink(src, dst int) {
	if c.world != nil {
		c.world.FailLink(src, dst)
	}
}

// Distributed reports whether the ranks live in other processes.
func (c *Cluster) Distributed() bool { return c.remote != nil }

// Recorder returns the cluster's trace recorder (nil when tracing is off).
func (c *Cluster) Recorder() *trace.Recorder { return c.rec }

// SyncTrace pulls every worker's staged spans and series deltas into the
// cluster's recorder. In-process it is a no-op — the engines already share
// the recorder. Distributed it is a control-plane round trip; callers must
// not race it against an in-flight prefill or decode (the serving layer
// calls it under its cluster lock before every scrape or trace export).
func (c *Cluster) SyncTrace() error {
	if c.rec == nil || c.remote == nil {
		return nil
	}
	results, err := c.remote.traceDrain()
	if err != nil {
		return err
	}
	for _, res := range results {
		c.rec.MergeSpans(wireToSpans(res.Spans))
		c.rec.MergeSeries(wireToSnaps(res.Series))
	}
	return nil
}

// SeqLen returns the cached length of a sequence.
func (c *Cluster) SeqLen(seq int) int { return c.seqLens[seq] }

// Close releases the cluster's transport resources. For a distributed
// cluster it sends every worker a shutdown command and hangs up the control
// plane; in-process clusters close their mailbox transport (stopping the
// failure-event pump). Closing twice is safe.
func (c *Cluster) Close() error {
	if c.remote != nil {
		return c.remote.close()
	}
	return c.world.Transport().Close()
}

// Telemetry is a consistent cross-rank snapshot of the cluster's observable
// state: per-rank KV occupancy, assembled-KV copy counters, comm accounting
// by collective kind, and per-directed-link traffic (modeled bytes always;
// wire frames/bytes when a real transport moved them).
type Telemetry struct {
	Transport string
	RankKV    []int
	Assembly  ring.BlockCacheStats
	Comm      comm.Stats
	Links     []wire.LinkStat
	// IntegrityChecked/Rejected count wire frames through the CRC32C check,
	// summed across every process in the cluster (workers + coordinator).
	IntegrityChecked  int64
	IntegrityRejected int64
	// ChaosKinds/ChaosCounts report injected chaos faults by kind (sorted),
	// summed across processes; empty outside chaos runs.
	ChaosKinds  []string
	ChaosCounts []int64
}

// Telemetry snapshots the cluster. Callers must not race it against an
// in-flight prefill or decode (the serving layer reads it under its cluster
// lock). For a distributed cluster this is a control-plane round trip.
func (c *Cluster) Telemetry() (Telemetry, error) {
	if c.remote != nil {
		return c.remote.telemetry()
	}
	tel := Telemetry{
		Transport: "mem",
		RankKV:    make([]int, c.n),
		Comm:      c.world.TotalStats(),
		Links:     c.world.LinkStats(),
	}
	for r, e := range c.engines {
		tel.RankKV[r] = e.cacheTokens()
		tel.Assembly.Add(e.assembly())
	}
	// One process hosts everything here, so the process-global counters are
	// the whole cluster's.
	tel.IntegrityChecked, tel.IntegrityRejected = wire.IntegrityStats()
	tel.ChaosKinds, tel.ChaosCounts = chaos.Totals()
	return tel, nil
}

// CommStats returns cumulative traffic accounted by collective kind. It is
// an in-process convenience wrapper: on a distributed cluster whose control
// plane has failed it returns zero-valued stats — use Telemetry directly
// when the error matters (the failure itself is not silent: every
// subsequent cluster operation fails once the plane is poisoned).
func (c *Cluster) CommStats() comm.Stats {
	tel, err := c.Telemetry()
	if err != nil {
		return comm.Stats{Messages: map[comm.Kind]int64{}, Bytes: map[comm.Kind]float64{}}
	}
	return tel.Comm
}

// AssemblyStats aggregates the assembled-KV mirror copy counters across all
// ranks and layers — the observable form of the zero-rebuild guarantee.
// Like CommStats, it returns zero values if a distributed control plane has
// failed; use Telemetry for error visibility.
func (c *Cluster) AssemblyStats() ring.BlockCacheStats {
	tel, err := c.Telemetry()
	if err != nil {
		return ring.BlockCacheStats{}
	}
	return tel.Assembly
}

// RankCacheTokens returns per-rank cached tokens summed over layers. Like
// CommStats, it returns zeros if a distributed control plane has failed;
// use Telemetry for error visibility.
func (c *Cluster) RankCacheTokens() []int {
	tel, err := c.Telemetry()
	if err != nil {
		return make([]int, c.n)
	}
	return tel.RankKV
}

// Prefill runs a full or partial prefill of new tokens for a sequence and
// returns the logits of every new position, in order.
func (c *Cluster) Prefill(seq int, tokens []int, variant perf.Variant) ([][]float32, error) {
	out, err := c.PrefillBatch([]int{seq}, [][]int{tokens}, variant)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// PrefillBatch runs a fused variable-sequence-length prefill (Figure 1's
// scenario at the whole-model level): every sequence is load-balance sharded
// independently, the batch's Q/K/V fuse into one ring pass per layer, and
// per-sequence logits come back in order. Sequences may be new or have
// persistent KV from earlier turns.
func (c *Cluster) PrefillBatch(seqIDs []int, tokens [][]int, variant perf.Variant) ([][][]float32, error) {
	if len(seqIDs) == 0 || len(seqIDs) != len(tokens) {
		return nil, fmt.Errorf("transformer: %d seq ids with %d token lists", len(seqIDs), len(tokens))
	}
	m := c.W.Cfg.Model
	lens := make([]int, len(seqIDs))
	seen := map[int]bool{}
	for i, toks := range tokens {
		if len(toks) == 0 {
			return nil, fmt.Errorf("transformer: empty prefill for sequence %d", seqIDs[i])
		}
		if seqIDs[i] < 0 {
			// Reject up front: the ring layer treats negative ids as
			// padding markers, and an error surfacing on one rank mid-ring
			// would leave its peers waiting for the receive timeout.
			return nil, fmt.Errorf("transformer: negative sequence id %d", seqIDs[i])
		}
		if seen[seqIDs[i]] {
			return nil, fmt.Errorf("transformer: duplicate sequence %d in batch", seqIDs[i])
		}
		seen[seqIDs[i]] = true
		lens[i] = len(toks)
		// Validate up front: an error surfacing on one rank mid-ring would
		// leave its peers waiting for the receive timeout.
		for pos, id := range toks {
			if id < 0 || id >= m.VocabSize {
				return nil, fmt.Errorf("transformer: token %d at position %d of sequence %d outside vocab %d",
					id, pos, seqIDs[i], m.VocabSize)
			}
		}
	}
	plan, err := sharding.NewBatchShard(lens, c.n)
	if err != nil {
		return nil, err
	}
	p := make([]int, len(seqIDs))
	for i, id := range seqIDs {
		p[i] = c.seqLens[id]
	}
	if variant == perf.Auto {
		// Equation 1 on the batch's aggregate miss rate: chunked serving
		// calls this once per chunk, so the choice adapts per chunk as the
		// cached prefix grows. The inputs are pure functions of absolute
		// position under canonical chunking, which keeps warm (prefix-cache
		// seeded) prefills on the same variant schedule as a cold replay —
		// the exact-equality guarantee depends on it.
		T, P := 0, 0
		for i := range lens {
			T += lens[i]
			P += p[i]
		}
		variant = perf.ChooseVariant(m, T, P)
	}
	if err := c.prefillCapacityCheck(plan, seqIDs); err != nil {
		return nil, err
	}
	cmd := &wire.PrefillCmd{Seqs: seqIDs, Tokens: tokens, P: p, Variant: int(variant)}
	var locals []*tensor.Tensor
	if c.remote != nil {
		locals, err = c.remote.prefill(cmd)
	} else {
		locals, err = comm.RunCollect(c.world, func(r *comm.Rank) (*tensor.Tensor, error) {
			return c.engines[r.ID].prefill(r, cmd)
		})
	}
	if err != nil {
		return nil, err
	}
	fused := plan.Unshard(locals)
	out := make([][][]float32, len(seqIDs))
	for i, id := range seqIDs {
		off := plan.SeqOffset(i)
		rows := make([][]float32, lens[i])
		for t := 0; t < lens[i]; t++ {
			rows[t] = fused.Row2D(off + t)
		}
		out[i] = rows
		c.seqLens[id] += lens[i]
	}
	return out, nil
}

// capSnapshot holds the admission-control inputs of every rank: free rows
// per (rank, layer) and copy-on-write append overhead per (rank, batch
// sequence, layer). nil means capacity limits are off.
type capSnapshot struct {
	avail    [][]int   // [rank][layer]
	overhead [][][]int // [rank][seqIdx][layer]
}

// capInputs gathers the snapshot for the listed batch sequences — locally
// from the engines, or by a control-plane query in distributed mode. The
// command stream is single-threaded, so the snapshot cannot go stale
// between the check and the ring pass.
func (c *Cluster) capInputs(seqIDs []int) (*capSnapshot, error) {
	if c.kvCapacity <= 0 {
		return nil, nil
	}
	if c.remote != nil {
		return c.remote.capInputs(seqIDs)
	}
	snap := &capSnapshot{avail: make([][]int, c.n), overhead: make([][][]int, c.n)}
	for r, e := range c.engines {
		snap.avail[r], snap.overhead[r] = e.capInfo(seqIDs)
	}
	return snap, nil
}

// prefillCapacityCheck verifies, before any ring pass, that every rank can
// absorb its shard of the batch's new KV on every layer. Sequences are
// admitted greedily in batch order; the ones that do not fit are returned in
// a CapacityError with no cache mutated, so a capacity fault quarantines
// exactly the offending sequences instead of poisoning the batch mid-ring.
func (c *Cluster) prefillCapacityCheck(plan *sharding.BatchShard, seqIDs []int) error {
	snap, err := c.capInputs(seqIDs)
	if err != nil {
		return err
	}
	if snap == nil {
		return nil
	}
	n := c.n
	layers := len(snap.avail[0])
	// rows[r][i] = new non-padding KV rows of batch sequence i on rank r.
	rows := make([][]int, n)
	for r := 0; r < n; r++ {
		rows[r] = make([]int, len(seqIDs))
		lp := plan.LocalPositions(r)
		ls := plan.LocalSeqs(r)
		for slot, s := range ls {
			if lp[slot] != sharding.Pad {
				rows[r][s]++
			}
		}
	}
	avail := make([][]int, n)
	for r := 0; r < n; r++ {
		avail[r] = append([]int(nil), snap.avail[r]...)
	}
	// A rank whose shard of a sequence is all padding appends nothing and
	// triggers no copy-on-write, so it must not be charged the overhead.
	need := func(r, l, i int) int {
		if rows[r][i] == 0 {
			return 0
		}
		return rows[r][i] + snap.overhead[r][i][l]
	}
	var offending []int
	for i, id := range seqIDs {
		fits := true
		for r := 0; r < n && fits; r++ {
			for l := 0; l < layers; l++ {
				if need(r, l, i) > avail[r][l] {
					fits = false
					break
				}
			}
		}
		if !fits {
			offending = append(offending, id)
			continue
		}
		for r := 0; r < n; r++ {
			for l := 0; l < layers; l++ {
				avail[r][l] -= need(r, l, i)
			}
		}
	}
	if len(offending) > 0 {
		return &CapacityError{Seqs: offending}
	}
	return nil
}

// decodeCapacityCheck is the decode-side precheck: each sequence appends one
// KV row per layer on its owner rank this step. Returns a CapacityError with
// the sequences that do not fit, before any cache mutation.
func (c *Cluster) decodeCapacityCheck(cmd *wire.DecodeCmd) error {
	snap, err := c.capInputs(cmd.Seqs)
	if err != nil {
		return err
	}
	if snap == nil {
		return nil
	}
	owned, ownedRows, _ := decodeOwnership(cmd, c.n)
	layers := len(snap.avail[0])
	var offending []int
	for r := range owned {
		avail := append([]int(nil), snap.avail[r]...)
		for j, tok := range owned[r] {
			row := ownedRows[r][j]
			fits := true
			for l := 0; l < layers; l++ {
				if 1+snap.overhead[r][row][l] > avail[l] {
					fits = false
					break
				}
			}
			if !fits {
				offending = append(offending, tok.Seq)
				continue
			}
			for l := 0; l < layers; l++ {
				avail[l] -= 1 + snap.overhead[r][row][l]
			}
		}
	}
	if len(offending) > 0 {
		return &CapacityError{Seqs: offending}
	}
	return nil
}

// Decode generates the logits for one new token of a sequence using batched
// ring pass-Q decode on every layer. It is the batch-of-one special case of
// DecodeBatch.
func (c *Cluster) Decode(seq, token int) ([]float32, error) {
	out, err := c.DecodeBatch([]int{seq}, []int{token})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// DecodeBatch advances every listed sequence by one token in a single ring
// pass-Q sweep per layer (§3.6 batched decode at the whole-model level).
// Entry i feeds tokens[i] to seqs[i]; per-sequence logits come back in batch
// order. Token ownership rotates per sequence — sequence s's step-t token is
// owned by rank t mod N regardless of what else shares the batch — so the
// KV placement, and therefore the floating-point merge order, of every
// sequence is identical to a serial single-session execution. Non-owner
// ranks participate in every layer's ring attention while only owner ranks
// run embeddings, projections, FFN, and the output head for their tokens.
func (c *Cluster) DecodeBatch(seqs []int, tokens []int) ([][]float32, error) {
	b := len(seqs)
	if b == 0 || b != len(tokens) {
		return nil, fmt.Errorf("transformer: %d sequences with %d decode tokens", b, len(tokens))
	}
	m := c.W.Cfg.Model
	seen := make(map[int]bool, b)
	for i, seq := range seqs {
		if seq < 0 {
			return nil, fmt.Errorf("transformer: negative sequence id %d", seq)
		}
		if _, ok := c.seqLens[seq]; !ok {
			return nil, fmt.Errorf("transformer: decode for unknown sequence %d", seq)
		}
		if seen[seq] {
			return nil, fmt.Errorf("transformer: duplicate sequence %d in decode batch", seq)
		}
		seen[seq] = true
		if tokens[i] < 0 || tokens[i] >= m.VocabSize {
			return nil, fmt.Errorf("transformer: decode token %d outside vocab %d", tokens[i], m.VocabSize)
		}
	}

	// Resolve each batch entry's owner rank and global position on the
	// coordinator — pure functions of (sequence, per-sequence step) — and
	// ship them in the command so every rank derives identical ownership.
	pos := make([]int, b)
	owners := make([]int, b)
	for i, seq := range seqs {
		// Owner depends only on (seq, per-seq step) — never on batch
		// composition — so fused and serial execution place KV
		// identically, while distinct sequences at equal step counts
		// still spread across ranks instead of piling onto one.
		pos[i] = c.seqLens[seq]
		owners[i] = sharding.DecodeOwner(seqOwnerOffset(seq), c.decodeSteps[seq], c.n)
	}
	cmd := &wire.DecodeCmd{Seqs: seqs, Tokens: tokens, Pos: pos, Owners: owners}
	if err := c.decodeCapacityCheck(cmd); err != nil {
		return nil, err
	}

	var results [][]float32
	var err error
	if c.remote != nil {
		results, err = c.remote.decode(cmd)
	} else {
		results, err = comm.RunCollect(c.world, func(r *comm.Rank) ([]float32, error) {
			return c.engines[r.ID].decode(r, cmd)
		})
	}
	if err != nil {
		return nil, err
	}
	_, ownedRows, _ := decodeOwnership(cmd, c.n)
	out := make([][]float32, b)
	for r := 0; r < c.n; r++ {
		for j, row := range ownedRows[r] {
			out[row] = results[r][j*m.VocabSize : (j+1)*m.VocabSize]
		}
	}
	for _, seq := range seqs {
		c.seqLens[seq]++
		c.decodeSteps[seq]++
	}
	return out, nil
}

// seqOwnerOffset decorrelates owner rotation across sequence ids with a
// fixed integer hash (splitmix64 finalizer). Client-chosen session ids are
// often congruent mod N (100, 104, 108 on 4 ranks would otherwise share one
// owner forever); hashing breaks persistent collisions while keeping the
// offset a pure function of the id, which the bit-identity guarantee needs.
func seqOwnerOffset(seq int) int {
	x := uint64(seq)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x & 0x7fffffff)
}

// DecodeOwnerRank returns the rank that owns (appends the KV of, and runs
// the head for) a sequence's decode token at the given per-sequence step, on
// an n-rank cluster. Exposed so schedulers and tests can reason about
// per-rank KV pressure without replaying the hash.
func DecodeOwnerRank(seq, step, n int) int {
	return sharding.DecodeOwner(seqOwnerOffset(seq), step, n)
}

// Drop evicts a sequence from every rank's per-layer cache (and its
// assembled-block mirror) and forgets its decode rotation state, freeing the
// admission slot it occupied.
func (c *Cluster) Drop(seq int) {
	if c.remote != nil {
		c.remote.drop(seq)
	} else {
		for _, e := range c.engines {
			e.drop(seq)
		}
	}
	delete(c.seqLens, seq)
	delete(c.decodeSteps, seq)
}

// PrefixKV is a refcounted handle on the sharded KV of a sequence's token
// prefix: one kvcache.Span per rank per layer (held rank-side), pinning the
// pages a canonical prefill of that prefix produced. The handle keeps the KV
// alive after the donor sequence is dropped and can seed any number of later
// sequences via AdoptPrefix. It satisfies prefixcache.Entry, so the serving
// layer stores it directly in the prefix tree.
type PrefixKV struct {
	tokens   int
	id       uint64
	c        *Cluster
	epoch    uint64 // incarnation whose rank registries hold the spans
	released bool
}

// Tokens returns the prefix length in tokens.
func (p *PrefixKV) Tokens() int { return p.tokens }

// Release frees the handle's page references on every rank and layer.
// Releasing twice is a no-op; pages shared with live sequences or other
// handles survive. A handle from a pre-rebuild epoch releases nothing: the
// registries that held its spans died with the old incarnation, and a
// release broadcast would be wasted round trips (or worse, would race the
// new epoch's ids).
func (p *PrefixKV) Release() {
	if p == nil || p.released {
		return
	}
	p.released = true
	if p.epoch == p.c.epoch {
		p.c.releasePrefix(p.id)
	}
}

func (c *Cluster) releasePrefix(id uint64) {
	if c.remote != nil {
		c.remote.releasePrefix(id)
		return
	}
	for _, e := range c.engines {
		e.releasePrefix(id)
	}
}

// DetachPrefix pins the first upTo tokens of a resident sequence into a
// PrefixKV without copying. upTo must be a boundary the sequence prefilled
// across in canonical order — every rank's rows below it must form an
// append-order prefix and the per-layer rank total must equal upTo — or the
// adopted KV could not replay a cold prefill's placement. The caller may
// Drop the sequence afterwards; the handle keeps the pages alive.
func (c *Cluster) DetachPrefix(seq, upTo int) (*PrefixKV, error) {
	total, ok := c.seqLens[seq]
	if !ok {
		return nil, fmt.Errorf("transformer: detach for unknown sequence %d", seq)
	}
	if upTo <= 0 || upTo > total {
		return nil, fmt.Errorf("transformer: detach bound %d outside sequence %d's length %d", upTo, seq, total)
	}
	c.prefixSeq++
	id := c.prefixSeq
	// perRank[r][l] = tokens rank r pinned below the boundary on layer l.
	var perRank [][]int
	if c.remote != nil {
		var err error
		perRank, err = c.remote.detach(id, seq, upTo)
		if err != nil {
			c.releasePrefix(id)
			return nil, err
		}
	} else {
		for r, e := range c.engines {
			perLayer, err := e.detach(id, seq, upTo)
			if err != nil {
				for _, done := range c.engines[:r] {
					done.releasePrefix(id)
				}
				return nil, err
			}
			perRank = append(perRank, perLayer)
		}
	}
	layers := len(perRank[0])
	for l := 0; l < layers; l++ {
		n := 0
		for r := range perRank {
			n += perRank[r][l]
		}
		if n != upTo {
			c.releasePrefix(id)
			return nil, fmt.Errorf("transformer: sequence %d holds %d of %d tokens below the detach bound on layer %d",
				seq, n, upTo, l)
		}
	}
	return &PrefixKV{tokens: upTo, id: id, c: c, epoch: c.epoch}, nil
}

// AdoptPrefix seeds a new sequence from a detached prefix by sharing its
// pages on every rank and layer (copy-on-write on the first append past a
// shared tail). The sequence continues from position pre.Tokens() exactly as
// if it had prefilled the prefix itself.
func (c *Cluster) AdoptPrefix(seq int, pre *PrefixKV) error {
	if seq < 0 {
		return fmt.Errorf("transformer: negative sequence id %d", seq)
	}
	if pre == nil || pre.released {
		return fmt.Errorf("transformer: adopting a nil or released prefix")
	}
	if pre.c != c {
		return fmt.Errorf("transformer: adopting a prefix detached from a different cluster")
	}
	if pre.epoch != c.epoch {
		return fmt.Errorf("transformer: adopting a prefix from stale epoch %d (cluster is at %d)", pre.epoch, c.epoch)
	}
	if _, ok := c.seqLens[seq]; ok {
		return fmt.Errorf("transformer: sequence %d already resident", seq)
	}
	if c.remote != nil {
		if err := c.remote.adopt(seq, pre.id); err != nil {
			c.Drop(seq)
			return err
		}
	} else {
		for _, e := range c.engines {
			if err := e.adopt(seq, pre.id); err != nil {
				c.Drop(seq)
				return err
			}
		}
	}
	c.seqLens[seq] = pre.tokens
	return nil
}

// PrefillFrom seeds a sequence from a cached prefix and prefills only the
// miss suffix, returning the suffix positions' logits — the warm-start entry
// point of the prefix-reuse subsystem. A nil prefix degrades to a cold
// Prefill of the suffix.
func (c *Cluster) PrefillFrom(seq int, pre *PrefixKV, suffix []int, variant perf.Variant) ([][]float32, error) {
	if pre != nil && pre.Tokens() > 0 {
		if err := c.AdoptPrefix(seq, pre); err != nil {
			return nil, err
		}
	}
	return c.Prefill(seq, suffix, variant)
}

// Generate greedily extends a prompt: one distributed prefill, then
// `steps` distributed decode steps. Returns the generated token ids.
func (c *Cluster) Generate(seq int, prompt []int, steps int, variant perf.Variant) ([]int, error) {
	logits, err := c.Prefill(seq, prompt, variant)
	if err != nil {
		return nil, err
	}
	next := Argmax(logits[len(logits)-1])
	out := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, next)
		if i == steps-1 {
			break
		}
		l, err := c.Decode(seq, next)
		if err != nil {
			return nil, err
		}
		next = Argmax(l)
	}
	return out, nil
}
