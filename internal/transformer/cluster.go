package transformer

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
)

// Cluster executes the transformer across N context-parallel ranks: tokens
// are load-balance sharded, all non-attention computation runs locally on
// each rank's shard (CP keeps linear layers communication-free by sharding
// the token dimension), and every layer's attention runs the ring
// algorithms against per-layer per-rank persistent KV caches. Weights are
// replicated on every rank, as in the paper.
type Cluster struct {
	W     *Weights
	world *comm.World

	caches  [][]*kvcache.Cache // [rank][layer]
	seqLens map[int]int
	step    int
}

// NewCluster builds an N-rank execution of the given weights.
func NewCluster(w *Weights, ranks int) (*Cluster, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("transformer: non-positive rank count %d", ranks)
	}
	m := w.Cfg.Model
	c := &Cluster{W: w, world: comm.NewWorld(ranks), seqLens: make(map[int]int)}
	for r := 0; r < ranks; r++ {
		var perLayer []*kvcache.Cache
		for l := 0; l < m.Layers; l++ {
			kc, err := kvcache.New(kvcache.Config{KVHeads: m.NumKV, HeadDim: m.HeadDim})
			if err != nil {
				return nil, err
			}
			perLayer = append(perLayer, kc)
		}
		c.caches = append(c.caches, perLayer)
	}
	return c, nil
}

// Ranks returns the CP group size.
func (c *Cluster) Ranks() int { return c.world.N }

// SeqLen returns the cached length of a sequence.
func (c *Cluster) SeqLen(seq int) int { return c.seqLens[seq] }

// CommStats returns cumulative traffic.
func (c *Cluster) CommStats() comm.Stats { return c.world.TotalStats() }

// RankCacheTokens returns per-rank cached tokens summed over layers.
func (c *Cluster) RankCacheTokens() []int {
	out := make([]int, c.world.N)
	for r, layers := range c.caches {
		for _, kc := range layers {
			out[r] += kc.TotalTokens()
		}
	}
	return out
}

// Prefill runs a full or partial prefill of new tokens for a sequence and
// returns the logits of every new position, in order.
func (c *Cluster) Prefill(seq int, tokens []int, variant perf.Variant) ([][]float32, error) {
	out, err := c.PrefillBatch([]int{seq}, [][]int{tokens}, variant)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// PrefillBatch runs a fused variable-sequence-length prefill (Figure 1's
// scenario at the whole-model level): every sequence is load-balance sharded
// independently, the batch's Q/K/V fuse into one ring pass per layer, and
// per-sequence logits come back in order. Sequences may be new or have
// persistent KV from earlier turns.
func (c *Cluster) PrefillBatch(seqIDs []int, tokens [][]int, variant perf.Variant) ([][][]float32, error) {
	if len(seqIDs) == 0 || len(seqIDs) != len(tokens) {
		return nil, fmt.Errorf("transformer: %d seq ids with %d token lists", len(seqIDs), len(tokens))
	}
	m := c.W.Cfg.Model
	lens := make([]int, len(seqIDs))
	seen := map[int]bool{}
	for i, toks := range tokens {
		if len(toks) == 0 {
			return nil, fmt.Errorf("transformer: empty prefill for sequence %d", seqIDs[i])
		}
		if seen[seqIDs[i]] {
			return nil, fmt.Errorf("transformer: duplicate sequence %d in batch", seqIDs[i])
		}
		seen[seqIDs[i]] = true
		lens[i] = len(toks)
		// Validate up front: an error surfacing on one rank mid-ring would
		// leave its peers waiting for the receive timeout.
		for pos, id := range toks {
			if id < 0 || id >= m.VocabSize {
				return nil, fmt.Errorf("transformer: token %d at position %d of sequence %d outside vocab %d",
					id, pos, seqIDs[i], m.VocabSize)
			}
		}
	}
	plan, err := sharding.NewBatchShard(lens, c.world.N)
	if err != nil {
		return nil, err
	}
	p := make([]int, len(seqIDs))
	for i, id := range seqIDs {
		p[i] = c.seqLens[id]
	}
	run := ring.PassKVPrefill
	if variant == perf.PassQ {
		run = ring.PassQPrefill
	}

	locals, err := comm.RunCollect(c.world, func(r *comm.Rank) (*tensor.Tensor, error) {
		lp := plan.LocalPositions(r.ID)
		ls := plan.LocalSeqs(r.ID)
		localLen := plan.LocalLen(r.ID)
		ids := make([]int, localLen)
		gpos := make([]int, localLen)
		for slot, pos := range lp {
			if pos == sharding.Pad {
				ids[slot] = -1
				gpos[slot] = -1
			} else {
				ids[slot] = tokens[ls[slot]][pos]
				gpos[slot] = p[ls[slot]] + pos
			}
		}
		hidden, err := c.W.embedTokens(ids)
		if err != nil {
			return nil, err
		}
		for l := 0; l < m.Layers; l++ {
			q, k, v := c.W.projectQKV(l, hidden, localLen, gpos)
			out, err := run(&ring.PrefillInput{
				Rank: r, Plan: plan, P: p, SeqIDs: seqIDs,
				Q: q, K: k, V: v,
				Cache: c.caches[r.ID][l], Elem: m.ElemBytes,
			})
			if err != nil {
				return nil, fmt.Errorf("layer %d: %w", l, err)
			}
			if err := ring.AppendLocalKV(c.caches[r.ID][l], plan, r.ID, p, seqIDs, k, v); err != nil {
				return nil, err
			}
			c.W.attnResidual(l, hidden, out.O)
			c.W.ffnResidual(l, hidden, localLen)
		}
		flat := c.W.logits(hidden, localLen)
		return tensor.FromData(localLen, 1, m.VocabSize, flat)
	})
	if err != nil {
		return nil, err
	}
	fused := plan.Unshard(locals)
	out := make([][][]float32, len(seqIDs))
	for i, id := range seqIDs {
		off := plan.SeqOffset(i)
		rows := make([][]float32, lens[i])
		for t := 0; t < lens[i]; t++ {
			rows[t] = fused.Row2D(off + t)
		}
		out[i] = rows
		c.seqLens[id] += lens[i]
	}
	return out, nil
}

// Decode generates the logits for one new token of a sequence using batched
// ring pass-Q decode on every layer. Token ownership rotates across ranks
// per step (§3.6), so the non-owner ranks participate in attention while
// only the owner runs the rest of the layer stack.
func (c *Cluster) Decode(seq, token int) ([]float32, error) {
	if _, ok := c.seqLens[seq]; !ok {
		return nil, fmt.Errorf("transformer: decode for unknown sequence %d", seq)
	}
	m := c.W.Cfg.Model
	if token < 0 || token >= m.VocabSize {
		return nil, fmt.Errorf("transformer: decode token %d outside vocab %d", token, m.VocabSize)
	}
	pos := c.seqLens[seq]
	owner := sharding.DecodeOwner(0, c.step, c.world.N)
	c.step++

	results, err := comm.RunCollect(c.world, func(r *comm.Rank) ([]float32, error) {
		isOwner := r.ID == owner
		var hidden []float32
		if isOwner {
			var err error
			hidden, err = c.W.embedTokens([]int{token})
			if err != nil {
				return nil, err
			}
		}
		for l := 0; l < m.Layers; l++ {
			in := &ring.DecodeInput{
				Rank: r, NumSeqs: 1,
				Q:     tensor.New(0, m.NumHeads, m.HeadDim),
				K:     tensor.New(0, m.NumKV, m.HeadDim),
				V:     tensor.New(0, m.NumKV, m.HeadDim),
				Cache: c.caches[r.ID][l], Elem: m.ElemBytes,
			}
			if isOwner {
				q, k, v := c.W.projectQKV(l, hidden, 1, []int{pos})
				in.Owned = []ring.DecodeToken{{Seq: seq, Pos: pos}}
				in.Q, in.K, in.V = q, k, v
			}
			out, err := ring.PassQDecode(in)
			if err != nil {
				return nil, fmt.Errorf("layer %d: %w", l, err)
			}
			if isOwner {
				c.W.attnResidual(l, hidden, out.O)
				c.W.ffnResidual(l, hidden, 1)
			}
		}
		if !isOwner {
			return nil, nil
		}
		return c.W.logits(hidden, 1), nil
	})
	if err != nil {
		return nil, err
	}
	c.seqLens[seq]++
	return results[owner], nil
}

// Generate greedily extends a prompt: one distributed prefill, then
// `steps` distributed decode steps. Returns the generated token ids.
func (c *Cluster) Generate(seq int, prompt []int, steps int, variant perf.Variant) ([]int, error) {
	logits, err := c.Prefill(seq, prompt, variant)
	if err != nil {
		return nil, err
	}
	next := Argmax(logits[len(logits)-1])
	out := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, next)
		if i == steps-1 {
			break
		}
		l, err := c.Decode(seq, next)
		if err != nil {
			return nil, err
		}
		next = Argmax(l)
	}
	return out, nil
}
