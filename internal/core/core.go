// Package core implements the context-parallel inference engine — the
// paper's primary contribution assembled from the substrates: load-balanced
// sharding (§3.5.1), ring pass-KV and pass-Q prefill (§3.5.2-3.5.3), batched
// ring pass-Q decode (§3.6), per-rank persistent KV caches, and the adaptive
// variant-selection heuristics (§3.4, Appendices C-D).
//
// The engine runs a simulated CP group: one goroutine per rank connected by
// the comm package. Callers drive it at the attention-layer level — they
// provide projected Q/K/V for new tokens and receive exact attention
// outputs — which is the layer the paper's algorithms live at. Everything
// the engine returns is lossless: with Config.TrackHistory set it can
// produce single-device reference outputs for any sequence to prove it.
package core

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Policy decides the ring variant of a partial prefill given the new-token
// count T and cached length P. Decode always rides pass-Q (Equation 1's
// T = 1 limit).
type Policy interface {
	ChoosePrefill(T, P int) perf.Variant
	Name() string
}

// forced always picks one variant.
type forced struct{ v perf.Variant }

func (f forced) ChoosePrefill(int, int) perf.Variant { return f.v }
func (f forced) Name() string                        { return "forced-" + f.v.String() }

// Force returns a policy pinned to one variant.
func Force(v perf.Variant) Policy { return forced{v} }

// policyFunc adapts a function to a Policy.
type policyFunc struct {
	name string
	fn   func(T, P int) perf.Variant
}

func (p policyFunc) ChoosePrefill(T, P int) perf.Variant { return p.fn(T, P) }
func (p policyFunc) Name() string                        { return p.name }

// PolicyFunc wraps a selector function as a Policy.
func PolicyFunc(name string, fn func(T, P int) perf.Variant) Policy {
	return policyFunc{name: name, fn: fn}
}

// Config sizes an engine.
type Config struct {
	Model         model.Config // head shapes; Layers is informational here
	Ranks         int          // CP ranks
	Policy        Policy       // nil = always pass-KV
	CacheCapacity int          // per-rank cached-token limit, 0 = unlimited
	PageSize      int          // KV cache page size, 0 = default
	TrackHistory  bool         // keep a full per-sequence KV oracle for Reference
}

// Engine is a running CP group with persistent conversation state.
type Engine struct {
	cfg    Config
	world  *comm.World
	caches []*kvcache.Cache
	rec    *trace.Recorder

	seqLens    map[int]int // sequence id -> total tokens so far
	decodeStep int

	histK, histV map[int]*tensor.Tensor // oracle history when TrackHistory
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("core: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.Policy == nil {
		cfg.Policy = Force(perf.PassKV)
	}
	e := &Engine{
		cfg:     cfg,
		world:   comm.NewWorld(cfg.Ranks),
		rec:     trace.New(),
		seqLens: make(map[int]int),
	}
	for r := 0; r < cfg.Ranks; r++ {
		c, err := kvcache.New(kvcache.Config{
			KVHeads:  cfg.Model.NumKV,
			HeadDim:  cfg.Model.HeadDim,
			PageSize: cfg.PageSize,
			Capacity: cfg.CacheCapacity,
		})
		if err != nil {
			return nil, err
		}
		e.caches = append(e.caches, c)
	}
	if cfg.TrackHistory {
		e.histK = make(map[int]*tensor.Tensor)
		e.histV = make(map[int]*tensor.Tensor)
	}
	return e, nil
}

// Ranks returns the CP group size.
func (e *Engine) Ranks() int { return e.cfg.Ranks }

// SeqLen returns the total cached length of a sequence (0 if unknown).
func (e *Engine) SeqLen(seq int) int { return e.seqLens[seq] }

// Sequences returns the number of live sequences.
func (e *Engine) Sequences() int { return len(e.seqLens) }

// Trace exposes the engine's span recorder.
func (e *Engine) Trace() *trace.Recorder { return e.rec }

// CommStats returns cumulative traffic across ranks.
func (e *Engine) CommStats() comm.Stats { return e.world.TotalStats() }

// ResetCommStats zeroes the traffic counters, e.g. to measure one turn.
func (e *Engine) ResetCommStats() { e.world.ResetStats() }

// RankCacheTokens returns each rank's cached token count — the balance the
// paper's sharding and round-robin decode maintain.
func (e *Engine) RankCacheTokens() []int {
	out := make([]int, e.cfg.Ranks)
	for r, c := range e.caches {
		out[r] = c.TotalTokens()
	}
	return out
}

// PrefillRequest is a fused batch of new tokens for known or new sequences.
type PrefillRequest struct {
	SeqIDs []int // sequence ids, one per batch entry
	Lens   []int // new-token count per sequence
	// Q [total, NH, DH]; K, V [total, NKV, DH]: fused projections of the
	// new tokens in batch order.
	Q, K, V *tensor.Tensor
}

// PrefillResult carries the fused attention output and what ran.
type PrefillResult struct {
	Output  *tensor.Tensor // [total, NH, DH], batch order
	Variant perf.Variant
	T, P    int // batch totals driving the policy decision
}

func (e *Engine) validatePrefill(req *PrefillRequest) error {
	if len(req.SeqIDs) == 0 || len(req.SeqIDs) != len(req.Lens) {
		return fmt.Errorf("core: %d seq ids with %d lens", len(req.SeqIDs), len(req.Lens))
	}
	seen := map[int]bool{}
	total := 0
	for i, id := range req.SeqIDs {
		if seen[id] {
			return fmt.Errorf("core: duplicate sequence %d in batch", id)
		}
		seen[id] = true
		if req.Lens[i] <= 0 {
			return fmt.Errorf("core: sequence %d has non-positive length %d", id, req.Lens[i])
		}
		total += req.Lens[i]
	}
	if req.Q == nil || req.K == nil || req.V == nil {
		return fmt.Errorf("core: nil Q/K/V")
	}
	if req.Q.Tokens != total || req.K.Tokens != total || req.V.Tokens != total {
		return fmt.Errorf("core: fused tensors have %d/%d/%d tokens, want %d",
			req.Q.Tokens, req.K.Tokens, req.V.Tokens, total)
	}
	if req.Q.Heads != e.cfg.Model.NumHeads || req.K.Heads != e.cfg.Model.NumKV ||
		req.Q.Dim != e.cfg.Model.HeadDim || req.K.Dim != e.cfg.Model.HeadDim {
		return fmt.Errorf("core: head shape mismatch with model %s", e.cfg.Model.Name)
	}
	return nil
}

// Prefill runs one full or partial prefill turn: the policy picks pass-KV or
// pass-Q from the batch's new-token count and cache state, the ring executes
// it, and the new KV is persisted on every rank's shard.
func (e *Engine) Prefill(req *PrefillRequest) (*PrefillResult, error) {
	if err := e.validatePrefill(req); err != nil {
		return nil, err
	}
	defer e.rec.Time("engine.prefill")()

	plan, err := sharding.NewBatchShard(req.Lens, e.cfg.Ranks)
	if err != nil {
		return nil, err
	}
	p := make([]int, len(req.SeqIDs))
	totalT, totalP := 0, 0
	for i, id := range req.SeqIDs {
		p[i] = e.seqLens[id]
		totalT += req.Lens[i]
		totalP += p[i]
	}
	variant := e.cfg.Policy.ChoosePrefill(totalT, totalP)
	run := ring.PassKVPrefill
	if variant == perf.PassQ {
		run = ring.PassQPrefill
	}
	e.rec.Add("prefill."+variant.String(), 1)

	outs, err := comm.RunCollect(e.world, func(r *comm.Rank) (*attention.Output, error) {
		in := &ring.PrefillInput{
			Rank: r, Plan: plan, P: p, SeqIDs: req.SeqIDs,
			Q: plan.Shard(req.Q, r.ID), K: plan.Shard(req.K, r.ID), V: plan.Shard(req.V, r.ID),
			Cache: e.caches[r.ID], Elem: e.cfg.Model.ElemBytes,
			Trace: e.rec.Sweep(r.ID, 1, "prefill"),
		}
		out, err := run(in)
		if err != nil {
			return nil, err
		}
		// Persist this rank's new KV shard for later turns and decode.
		if err := ring.AppendLocalKV(e.caches[r.ID], plan, r.ID, p, req.SeqIDs,
			plan.Shard(req.K, r.ID), plan.Shard(req.V, r.ID)); err != nil {
			return nil, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	locals := make([]*tensor.Tensor, e.cfg.Ranks)
	for r, o := range outs {
		locals[r] = o.O
	}
	fused := plan.Unshard(locals)

	for i, id := range req.SeqIDs {
		e.seqLens[id] += req.Lens[i]
		if e.cfg.TrackHistory {
			lo := plan.SeqOffset(i)
			hi := lo + req.Lens[i]
			e.histK[id] = tensor.Concat(e.histK[id], req.K.SliceTokens(lo, hi))
			e.histV[id] = tensor.Concat(e.histV[id], req.V.SliceTokens(lo, hi))
		}
	}
	return &PrefillResult{Output: fused, Variant: variant, T: totalT, P: totalP}, nil
}

// DecodeRequest is one batched decode step: one new token per sequence.
type DecodeRequest struct {
	SeqIDs []int // sequences decoding this step (must exist)
	// Q [B, NH, DH]; K, V [B, NKV, DH]: projections of each new token, rows
	// aligned with SeqIDs.
	Q, K, V *tensor.Tensor
}

// DecodeResult carries per-sequence outputs in request order.
type DecodeResult struct {
	Output *tensor.Tensor // [B, NH, DH]
	Step   int            // round-robin step used for owner assignment
}

// Decode runs one batched ring pass-Q decode step. The decode token of batch
// entry i is owned by rank (i + step) mod N; the step counter advances every
// call so cache growth rotates across ranks (§3.6).
func (e *Engine) Decode(req *DecodeRequest) (*DecodeResult, error) {
	b := len(req.SeqIDs)
	if b == 0 {
		return nil, fmt.Errorf("core: empty decode batch")
	}
	if req.Q == nil || req.Q.Tokens != b || req.K == nil || req.K.Tokens != b || req.V == nil || req.V.Tokens != b {
		return nil, fmt.Errorf("core: decode tensors must have %d rows", b)
	}
	seen := map[int]bool{}
	for _, id := range req.SeqIDs {
		if _, ok := e.seqLens[id]; !ok {
			return nil, fmt.Errorf("core: decode for unknown sequence %d", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("core: duplicate sequence %d in decode batch", id)
		}
		seen[id] = true
	}
	defer e.rec.Time("engine.decode")()
	step := e.decodeStep
	e.decodeStep++
	e.rec.Add("decode.steps", 1)

	owned := make([][]ring.DecodeToken, e.cfg.Ranks)
	ownedRows := make([][]int, e.cfg.Ranks)
	for i, id := range req.SeqIDs {
		r := sharding.DecodeOwner(i, step, e.cfg.Ranks)
		owned[r] = append(owned[r], ring.DecodeToken{Seq: id, Pos: e.seqLens[id]})
		ownedRows[r] = append(ownedRows[r], i)
	}
	outs, err := comm.RunCollect(e.world, func(r *comm.Rank) (*attention.Output, error) {
		rows := ownedRows[r.ID]
		q := req.Q.Gather(rows)
		k := req.K.Gather(rows)
		v := req.V.Gather(rows)
		return ring.PassQDecode(&ring.DecodeInput{
			Rank: r, NumSeqs: b, Owned: owned[r.ID], Q: q, K: k, V: v,
			Cache: e.caches[r.ID], Elem: e.cfg.Model.ElemBytes,
			Trace: e.rec.Sweep(r.ID, 1, "decode"),
		})
	})
	if err != nil {
		return nil, err
	}
	fused := tensor.New(b, e.cfg.Model.NumHeads, e.cfg.Model.HeadDim)
	for r := range outs {
		for j, row := range ownedRows[r] {
			copy(fused.Row2D(row), outs[r].O.Row2D(j))
		}
	}
	for i, id := range req.SeqIDs {
		e.seqLens[id]++
		if e.cfg.TrackHistory {
			e.histK[id] = tensor.Concat(e.histK[id], req.K.SliceTokens(i, i+1))
			e.histV[id] = tensor.Concat(e.histV[id], req.V.SliceTokens(i, i+1))
		}
	}
	return &DecodeResult{Output: fused, Step: step}, nil
}

// Drop evicts a sequence from every rank's cache, freeing its capacity.
func (e *Engine) Drop(seq int) {
	for _, c := range e.caches {
		c.Drop(seq)
	}
	delete(e.seqLens, seq)
	if e.cfg.TrackHistory {
		delete(e.histK, seq)
		delete(e.histV, seq)
	}
}

// Reference computes the single-device oracle attention for new queries of a
// tracked sequence against its full history. It requires TrackHistory and is
// how the examples and tests demonstrate losslessness. qPos is the global
// position of the first query row; the caller passes the pre-turn length.
func (e *Engine) Reference(seq int, q *tensor.Tensor, qPos int) (*tensor.Tensor, error) {
	if !e.cfg.TrackHistory {
		return nil, fmt.Errorf("core: Reference requires TrackHistory")
	}
	k, v := e.histK[seq], e.histV[seq]
	if k == nil {
		return nil, fmt.Errorf("core: unknown sequence %d", seq)
	}
	if qPos+q.Tokens > k.Tokens {
		return nil, fmt.Errorf("core: queries [%d,%d) exceed history %d", qPos, qPos+q.Tokens, k.Tokens)
	}
	// Queries at positions qPos.. attend to history up to their position.
	kv := k.SliceTokens(0, qPos+q.Tokens)
	vv := v.SliceTokens(0, qPos+q.Tokens)
	out, err := attention.GQA(q, kv, vv, attention.PartialCausal(q.Tokens, qPos))
	if err != nil {
		return nil, err
	}
	return out.O, nil
}
