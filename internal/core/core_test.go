package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/tensor"
)

const tol = 1e-4

func tinyEngine(t *testing.T, ranks int, policy Policy) *Engine {
	t.Helper()
	e, err := New(Config{Model: model.Tiny(), Ranks: ranks, Policy: policy, TrackHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// randBatch builds a fused prefill request for the given lengths.
func randBatch(rng *rand.Rand, m model.Config, seqIDs, lens []int) *PrefillRequest {
	total := 0
	for _, l := range lens {
		total += l
	}
	return &PrefillRequest{
		SeqIDs: seqIDs, Lens: lens,
		Q: tensor.RandN(rng, total, m.NumHeads, m.HeadDim),
		K: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
		V: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
	}
}

func randDecode(rng *rand.Rand, m model.Config, seqIDs []int) *DecodeRequest {
	b := len(seqIDs)
	return &DecodeRequest{
		SeqIDs: seqIDs,
		Q:      tensor.RandN(rng, b, m.NumHeads, m.HeadDim),
		K:      tensor.RandN(rng, b, m.NumKV, m.HeadDim),
		V:      tensor.RandN(rng, b, m.NumKV, m.HeadDim),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: model.Tiny(), Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	bad := model.Tiny()
	bad.ModelDim = 7
	if _, err := New(Config{Model: bad, Ranks: 2}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestPrefillLosslessAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := model.Tiny()
	for _, policy := range []Policy{Force(perf.PassKV), Force(perf.PassQ)} {
		e := tinyEngine(t, 3, policy)
		req := randBatch(rng, m, []int{10, 20}, []int{9, 6})
		res, err := e.Prefill(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output.Tokens != 15 {
			t.Fatalf("output tokens = %d", res.Output.Tokens)
		}
		// Per-sequence reference check.
		off := 0
		for i, id := range req.SeqIDs {
			q := req.Q.SliceTokens(off, off+req.Lens[i])
			ref, err := e.Reference(id, q, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Output.SliceTokens(off, off+req.Lens[i])
			if d := tensor.MaxAbsDiff(ref, got); d > tol {
				t.Fatalf("%s: sequence %d deviates by %v", policy.Name(), id, d)
			}
			off += req.Lens[i]
		}
	}
}

func TestMultiTurnConversation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := model.Tiny()
	e := tinyEngine(t, 2, Force(perf.PassKV))

	// Turn 1: two sequences.
	req1 := randBatch(rng, m, []int{0, 1}, []int{8, 5})
	if _, err := e.Prefill(req1); err != nil {
		t.Fatal(err)
	}
	if e.SeqLen(0) != 8 || e.SeqLen(1) != 5 {
		t.Fatalf("lens after turn1: %d %d", e.SeqLen(0), e.SeqLen(1))
	}

	// Turn 2: only sequence 1 plus a new sequence 2 — different batch
	// composition against persistent caches.
	req2 := randBatch(rng, m, []int{1, 2}, []int{4, 6})
	res2, err := e.Prefill(req2)
	if err != nil {
		t.Fatal(err)
	}
	q1 := req2.Q.SliceTokens(0, 4)
	ref, err := e.Reference(1, q1, 5) // sequence 1 had 5 tokens before
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref, res2.Output.SliceTokens(0, 4)); d > tol {
		t.Fatalf("partial prefill with shuffled batch deviates by %v", d)
	}
	if e.SeqLen(1) != 9 || e.SeqLen(2) != 6 {
		t.Fatalf("lens after turn2: %d %d", e.SeqLen(1), e.SeqLen(2))
	}
}

func TestDecodeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := model.Tiny()
	e := tinyEngine(t, 3, Force(perf.PassKV))
	if _, err := e.Prefill(randBatch(rng, m, []int{0, 1}, []int{7, 9})); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 6; step++ {
		req := randDecode(rng, m, []int{0, 1})
		lens := []int{e.SeqLen(0), e.SeqLen(1)}
		res, err := e.Decode(req)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range req.SeqIDs {
			ref, err := e.Reference(id, req.Q.SliceTokens(i, i+1), lens[i])
			if err != nil {
				t.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(ref, res.Output.SliceTokens(i, i+1)); d > tol {
				t.Fatalf("step %d seq %d deviates by %v", step, id, d)
			}
		}
	}
	if e.SeqLen(0) != 13 {
		t.Fatalf("SeqLen after decode = %d, want 13", e.SeqLen(0))
	}
}

func TestDecodeRotatesCacheGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := model.Tiny()
	e := tinyEngine(t, 4, Force(perf.PassKV))
	if _, err := e.Prefill(randBatch(rng, m, []int{0}, []int{8})); err != nil {
		t.Fatal(err)
	}
	base := e.RankCacheTokens()
	for step := 0; step < 8; step++ {
		if _, err := e.Decode(randDecode(rng, m, []int{0})); err != nil {
			t.Fatal(err)
		}
	}
	growth := make([]int, len(base))
	min, max := 1<<30, 0
	for r, tok := range e.RankCacheTokens() {
		growth[r] = tok - base[r]
		if growth[r] < min {
			min = growth[r]
		}
		if growth[r] > max {
			max = growth[r]
		}
	}
	if max-min > 1 {
		t.Fatalf("decode growth imbalance: %v", growth)
	}
}

func TestHeuristicPolicySwitchesVariants(t *testing.T) {
	// Wire the paper's Algorithm 1 with Llama3-405B/GTT rates into a tiny
	// functional engine: long first turn => pass-KV; tiny follow-up against
	// a big cache => pass-Q. The policy sees engine T/P values scaled up.
	in := heuristic.NewInputs(model.Llama3405B(), hw.GTT(), 2)
	scale := 1000 // engine tokens are tiny; scale to realistic magnitudes
	policy := PolicyFunc("alg1-scaled", func(T, P int) perf.Variant {
		return heuristic.Algorithm1(in, T*scale, P*scale)
	})
	rng := rand.New(rand.NewSource(5))
	m := model.Tiny()
	e := tinyEngine(t, 2, policy)

	res1, err := e.Prefill(randBatch(rng, m, []int{0}, []int{16}))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Variant != perf.PassKV {
		t.Fatalf("turn 1 used %v, want pass-KV (full prefill)", res1.Variant)
	}
	res2, err := e.Prefill(randBatch(rng, m, []int{0}, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Variant != perf.PassQ {
		t.Fatalf("turn 2 used %v, want pass-Q (1/17 miss rate)", res2.Variant)
	}
	// Both turns lossless regardless of variant mixing.
	if e.Trace().Counter("prefill.pass-KV") != 1 || e.Trace().Counter("prefill.pass-Q") != 1 {
		t.Fatalf("variant counters wrong: %s", e.Trace())
	}
}

func TestPrefillValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := model.Tiny()
	e := tinyEngine(t, 2, nil)
	cases := []struct {
		name string
		req  *PrefillRequest
	}{
		{"empty", &PrefillRequest{}},
		{"len mismatch", &PrefillRequest{SeqIDs: []int{0}, Lens: []int{1, 2}}},
		{"dup seq", func() *PrefillRequest {
			r := randBatch(rng, m, []int{3, 3}, []int{2, 2})
			return r
		}()},
		{"zero len", func() *PrefillRequest {
			r := randBatch(rng, m, []int{0}, []int{1})
			r.Lens = []int{0}
			return r
		}()},
		{"nil tensors", &PrefillRequest{SeqIDs: []int{0}, Lens: []int{2}}},
		{"bad shape", func() *PrefillRequest {
			r := randBatch(rng, m, []int{0}, []int{2})
			r.Q = tensor.RandN(rng, 2, m.NumHeads+1, m.HeadDim)
			return r
		}()},
	}
	for _, tc := range cases {
		if _, err := e.Prefill(tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDecodeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := model.Tiny()
	e := tinyEngine(t, 2, nil)
	if _, err := e.Decode(&DecodeRequest{}); err == nil {
		t.Fatal("empty decode accepted")
	}
	if _, err := e.Decode(randDecode(rng, m, []int{99})); err == nil {
		t.Fatal("unknown sequence accepted")
	}
	if _, err := e.Prefill(randBatch(rng, m, []int{0}, []int{4})); err != nil {
		t.Fatal(err)
	}
	bad := randDecode(rng, m, []int{0, 0})
	if _, err := e.Decode(bad); err == nil {
		t.Fatal("duplicate decode sequence accepted")
	}
	wrongRows := randDecode(rng, m, []int{0})
	wrongRows.Q = tensor.RandN(rng, 2, m.NumHeads, m.HeadDim)
	if _, err := e.Decode(wrongRows); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

func TestDropFreesState(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := model.Tiny()
	e := tinyEngine(t, 2, nil)
	if _, err := e.Prefill(randBatch(rng, m, []int{0}, []int{6})); err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, n := range e.RankCacheTokens() {
		before += n
	}
	if before != 6 {
		t.Fatalf("cached tokens = %d, want 6", before)
	}
	e.Drop(0)
	after := 0
	for _, n := range e.RankCacheTokens() {
		after += n
	}
	if after != 0 || e.SeqLen(0) != 0 || e.Sequences() != 0 {
		t.Fatalf("Drop left residue: tokens=%d len=%d seqs=%d", after, e.SeqLen(0), e.Sequences())
	}
	if _, err := e.Reference(0, tensor.New(1, m.NumHeads, m.HeadDim), 0); err == nil {
		t.Fatal("Reference on dropped sequence should fail")
	}
}

func TestCapacityExceededSurfacesError(t *testing.T) {
	m := model.Tiny()
	e, err := New(Config{Model: m, Ranks: 2, CacheCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// 20 tokens over 2 ranks = 10 per rank > 4 capacity.
	_, err = e.Prefill(randBatch(rng, m, []int{0}, []int{20}))
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity overflow not surfaced: %v", err)
	}
}

func TestReferenceRequiresTracking(t *testing.T) {
	m := model.Tiny()
	e, err := New(Config{Model: m, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Reference(0, tensor.New(1, m.NumHeads, m.HeadDim), 0); err == nil {
		t.Fatal("Reference without tracking should fail")
	}
}

func TestCommStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := model.Tiny()
	e := tinyEngine(t, 4, Force(perf.PassQ))
	if _, err := e.Prefill(randBatch(rng, m, []int{0}, []int{16})); err != nil {
		t.Fatal(err)
	}
	st := e.CommStats()
	if st.TotalBytes() <= 0 {
		t.Fatal("no communication accounted")
	}
	if st.Bytes["all2all"] <= 0 {
		t.Fatal("pass-Q prefill must use All2All")
	}
}

// Property: arbitrary interleavings of prefill and decode across random
// batch compositions stay lossless.
func TestPropertyEngineLossless(t *testing.T) {
	m := model.Tiny()
	f := func(seed int64, rawRanks, rawOps uint8) bool {
		ranks := int(rawRanks%3) + 1
		rng := rand.New(rand.NewSource(seed))
		e, err := New(Config{Model: m, Ranks: ranks, TrackHistory: true,
			Policy: Force(perf.Variant(int(rawOps) % 2))})
		if err != nil {
			return false
		}
		numSeqs := rng.Intn(2) + 1
		ids := make([]int, numSeqs)
		lens := make([]int, numSeqs)
		for i := range ids {
			ids[i] = i
			lens[i] = rng.Intn(8) + 1
		}
		req := randBatch(rng, m, ids, lens)
		res, err := e.Prefill(req)
		if err != nil {
			return false
		}
		off := 0
		for i, id := range ids {
			ref, err := e.Reference(id, req.Q.SliceTokens(off, off+lens[i]), 0)
			if err != nil || tensor.MaxAbsDiff(ref, res.Output.SliceTokens(off, off+lens[i])) > tol {
				return false
			}
			off += lens[i]
		}
		// A couple of decode steps.
		for s := 0; s < 2; s++ {
			dreq := randDecode(rng, m, ids)
			prev := make([]int, numSeqs)
			for i, id := range ids {
				prev[i] = e.SeqLen(id)
			}
			dres, err := e.Decode(dreq)
			if err != nil {
				return false
			}
			for i, id := range ids {
				ref, err := e.Reference(id, dreq.Q.SliceTokens(i, i+1), prev[i])
				if err != nil || tensor.MaxAbsDiff(ref, dres.Output.SliceTokens(i, i+1)) > tol {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
