// Package model holds transformer model configurations and the analytic
// compute/communication cost formulas from the paper (Table 3, Table 9, and
// Appendix A). The configurations drive both the functional ring-attention
// layer (tiny configs that preserve the NH/NKV ratios) and the calibrated
// performance model (the full Llama3 405B shape the paper evaluates).
package model

import "fmt"

// Config describes a dense GQA transformer, following the paper's notation
// table (Table 1): NH query heads, NKV key/value heads, head dimension DH,
// model dimension D = NH*DH.
type Config struct {
	Name      string
	Layers    int     // number of transformer blocks (#layers)
	ModelDim  int     // D
	FFNDim    int     // feed-forward hidden dimension
	NumHeads  int     // NH, query heads
	NumKV     int     // NKV, key/value heads
	HeadDim   int     // DH = D / NH
	Params    float64 // W, total parameter count
	ElemBytes float64 // e, bytes per element for QKV communication (2 = bf16)
	VocabSize int     // used only by parameter-count sanity checks
}

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	if c.Layers <= 0 || c.ModelDim <= 0 || c.NumHeads <= 0 || c.NumKV <= 0 || c.HeadDim <= 0 {
		return fmt.Errorf("model %q: non-positive dimension", c.Name)
	}
	if c.ModelDim != c.NumHeads*c.HeadDim {
		return fmt.Errorf("model %q: D=%d != NH*DH=%d*%d", c.Name, c.ModelDim, c.NumHeads, c.HeadDim)
	}
	if c.NumHeads%c.NumKV != 0 {
		return fmt.Errorf("model %q: NH=%d not divisible by NKV=%d", c.Name, c.NumHeads, c.NumKV)
	}
	if c.ElemBytes <= 0 {
		return fmt.Errorf("model %q: ElemBytes must be positive", c.Name)
	}
	return nil
}

// GroupSize returns NH/NKV, the number of query heads sharing one KV head.
func (c Config) GroupSize() int { return c.NumHeads / c.NumKV }

// KVRatio returns NKV/NH as a float, the message-size advantage of passing
// KV versus Q for one token (before the factor 2 for K and V).
func (c Config) KVRatio() float64 { return float64(c.NumKV) / float64(c.NumHeads) }

// Llama3405B returns the exact configuration from Table 9 of the paper.
// ElemBytes is 2 (bf16) for QKV communication; the paper quantizes only the
// feed-forward weights to fp8.
func Llama3405B() Config {
	return Config{
		Name:      "llama3-405b",
		Layers:    126,
		ModelDim:  16384,
		FFNDim:    53248,
		NumHeads:  128,
		NumKV:     8,
		HeadDim:   128,
		Params:    405e9,
		ElemBytes: 2,
		VocabSize: 128256,
	}
}

// Llama370B returns the Llama3 70B configuration, used for the smaller-model
// sensitivity experiments.
func Llama370B() Config {
	return Config{
		Name:      "llama3-70b",
		Layers:    80,
		ModelDim:  8192,
		FFNDim:    28672,
		NumHeads:  64,
		NumKV:     8,
		HeadDim:   128,
		Params:    70e9,
		ElemBytes: 2,
		VocabSize: 128256,
	}
}

// Llama38B returns the Llama3 8B configuration.
func Llama38B() Config {
	return Config{
		Name:      "llama3-8b",
		Layers:    32,
		ModelDim:  4096,
		FFNDim:    14336,
		NumHeads:  32,
		NumKV:     8,
		HeadDim:   128,
		Params:    8e9,
		ElemBytes: 2,
		VocabSize: 128256,
	}
}

// Tiny returns a small configuration for functional tests. It preserves a
// GQA ratio (NH > 2*NKV) so the heuristics behave like the real model's.
func Tiny() Config {
	return Config{
		Name:      "tiny-gqa",
		Layers:    2,
		ModelDim:  64,
		FFNDim:    128,
		NumHeads:  8,
		NumKV:     2,
		HeadDim:   8,
		Params:    1e6,
		ElemBytes: 2,
		VocabSize: 256,
	}
}

// TinyMHA returns a small multi-head-attention config (NKV == NH), the
// regime where passing Q is never larger than passing KV.
func TinyMHA() Config {
	return Config{
		Name:      "tiny-mha",
		Layers:    2,
		ModelDim:  32,
		FFNDim:    64,
		NumHeads:  4,
		NumKV:     4,
		HeadDim:   8,
		Params:    1e5,
		ElemBytes: 2,
		VocabSize: 256,
	}
}

// ---------------------------------------------------------------------------
// Cost formulas (Table 3 and Appendix A).
// ---------------------------------------------------------------------------

// AttnFLOPsPartial returns the attention FLOPs per layer for a partial
// prefill of T new tokens against P cached tokens: 4*T*D*(T+P) (Table 3).
// The formula counts both the QK^T and the PV batched matmuls with
// multiply-add = 2 FLOPs and no causal discount.
func (c Config) AttnFLOPsPartial(T, P int) float64 {
	return 4 * float64(T) * float64(c.ModelDim) * float64(T+P)
}

// AttnFLOPsFull returns the attention FLOPs per layer for a full prefill of
// T tokens: 4*T^2*D (Table 3, the P = 0 special case).
func (c Config) AttnFLOPsFull(T int) float64 { return c.AttnFLOPsPartial(T, 0) }

// AttnFLOPsCausal returns total causal attention FLOPs across all layers for
// a full prefill, with the 1/2 causal-mask discount used by the MFU
// calculation in Appendix A: 1/2 * 4 * B * T^2 * D * #layers.
func (c Config) AttnFLOPsCausal(B, T int) float64 {
	return 0.5 * 4 * float64(B) * float64(T) * float64(T) * float64(c.ModelDim) * float64(c.Layers)
}

// GEMMFLOPs returns total linear-layer FLOPs for B sequences of T tokens:
// 2 * W * T * B (Appendix A / Kaplan et al. approximation).
func (c Config) GEMMFLOPs(B, T int) float64 {
	return 2 * c.Params * float64(T) * float64(B)
}

// TotalPrefillFLOPs returns GEMM + causal attention FLOPs for a full
// prefill, as composed in Appendix A.
func (c Config) TotalPrefillFLOPs(B, T int) float64 {
	return c.GEMMFLOPs(B, T) + c.AttnFLOPsCausal(B, T)
}

// QBytes returns the communication payload of the query tensor for T new
// tokens: T * D * e (Table 3).
func (c Config) QBytes(T int) float64 {
	return float64(T) * float64(c.ModelDim) * c.ElemBytes
}

// KVBytes returns the communication payload of key and value tensors for a
// context of T new plus P cached tokens: 2 * (P+T) * D * (NKV/NH) * e
// (Table 3).
func (c Config) KVBytes(T, P int) float64 {
	return 2 * float64(T+P) * float64(c.ModelDim) * c.KVRatio() * c.ElemBytes
}

// TPCommBytesPerBlock returns the per-transformer-block AllReduce payload of
// tensor parallelism: 2 * T * NH * DH * e = 2 * T * D * e (Table 2, two
// AllReduce per block, one after attention and one after the FFN).
func (c Config) TPCommBytesPerBlock(T int) float64 {
	return 2 * float64(T) * float64(c.ModelDim) * c.ElemBytes
}

// CPCommBytesPerBlock returns the per-transformer-block SendRecv payload of
// context parallelism when passing KV for a full prefill: T * NKV * DH * e
// (Table 2; the factor covers K plus V halves combined as in the paper's
// table, which reports T*NKV*DH per attention layer).
func (c Config) CPCommBytesPerBlock(T int) float64 {
	return float64(T) * float64(c.NumKV) * float64(c.HeadDim) * c.ElemBytes
}

// KVCacheBytesPerToken returns the KV-cache footprint of one token across
// all layers at the given element width: 2 * NKV * DH * layers * e.
func (c Config) KVCacheBytesPerToken() float64 {
	return 2 * float64(c.NumKV) * float64(c.HeadDim) * float64(c.Layers) * c.ElemBytes
}

// MissRate returns the KV-cache miss rate T/(T+P) that drives the pass-KV
// versus pass-Q selection (Equation 1).
func MissRate(T, P int) float64 {
	if T+P == 0 {
		return 0
	}
	return float64(T) / float64(T+P)
}
