package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllConfigsValidate(t *testing.T) {
	for _, c := range []Config{Llama3405B(), Llama370B(), Llama38B(), Tiny(), TinyMHA()} {
		if err := c.Validate(); err != nil {
			t.Errorf("config %s failed validation: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Tiny()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero layers", func(c *Config) { c.Layers = 0 }},
		{"dim mismatch", func(c *Config) { c.ModelDim = c.ModelDim + 1 }},
		{"nh not divisible", func(c *Config) { c.NumKV = 3 }},
		{"zero elem bytes", func(c *Config) { c.ElemBytes = 0 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestLlama3405BMatchesTable9(t *testing.T) {
	c := Llama3405B()
	if c.Layers != 126 || c.ModelDim != 16384 || c.FFNDim != 53248 ||
		c.NumHeads != 128 || c.NumKV != 8 {
		t.Fatalf("Llama3 405B config deviates from Table 9: %+v", c)
	}
	if c.GroupSize() != 16 {
		t.Fatalf("GroupSize = %d, want 16 (the paper's 16x KV message advantage)", c.GroupSize())
	}
}

func TestKVRatioAndGroupSizeInverse(t *testing.T) {
	c := Llama3405B()
	if got := c.KVRatio() * float64(c.GroupSize()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("KVRatio*GroupSize = %v, want 1", got)
	}
}

// Appendix A: GEMM FLOPs = 2*405e9*1M = 8.1e17, ATTN FLOPs = 4.1e18,
// total ~4.9e18 for a 1M-token prefill at batch size 1.
func TestAppendixAFLOPsAccounting(t *testing.T) {
	c := Llama3405B()
	const T = 1_000_000
	gemm := c.GEMMFLOPs(1, T)
	if rel := math.Abs(gemm-8.1e17) / 8.1e17; rel > 1e-9 {
		t.Fatalf("GEMM FLOPs = %.4g, want 8.1e17", gemm)
	}
	attn := c.AttnFLOPsCausal(1, T)
	want := 0.5 * 4 * math.Pow(1e6, 2) * 16384 * 126 / 2 // 1/2*4*T^2*D*L with MA=2 folded in
	// The appendix states 1/2 * T^2 * D * L * 4 = 4.1e18 (rounded).
	want = 0.5 * 4 * 1e12 * 16384 * 126 / 2
	_ = want
	if attn < 4.0e18 || attn > 4.2e18 {
		t.Fatalf("ATTN FLOPs = %.4g, want ~4.1e18 per Appendix A", attn)
	}
	total := c.TotalPrefillFLOPs(1, T)
	if total < 4.8e18 || total > 5.1e18 {
		t.Fatalf("total FLOPs = %.4g, want ~4.9e18 per Appendix A", total)
	}
}

// Table 3 special cases: full prefill is partial prefill with P=0.
func TestAttnFLOPsFullIsPartialAtPZero(t *testing.T) {
	c := Llama3405B()
	for _, T := range []int{1, 128, 4096, 131072} {
		if c.AttnFLOPsFull(T) != c.AttnFLOPsPartial(T, 0) {
			t.Fatalf("full != partial(P=0) at T=%d", T)
		}
	}
}

// The paper's GQA advantage: for Llama3 405B, KV messages are 16x smaller
// than Q messages per token (NKV=8 vs NH=128), so KVBytes(T,0) =
// 2*T*D*e/16 = QBytes(T)/8.
func TestKVQBytesRatio(t *testing.T) {
	c := Llama3405B()
	T := 4096
	q := c.QBytes(T)
	kv := c.KVBytes(T, 0)
	// KV = 2*(NKV/NH)*Q = 2/16 Q = Q/8.
	if rel := math.Abs(kv-q/8) / (q / 8); rel > 1e-12 {
		t.Fatalf("KVBytes = %v, want QBytes/8 = %v", kv, q/8)
	}
}

// Table 2: TP communicates 2*T*NH*DH*e per block; CP communicates
// T*NKV*DH*e. The ratio for Llama3 405B is 32x.
func TestTable2CommRatio(t *testing.T) {
	c := Llama3405B()
	T := 8192
	tp := c.TPCommBytesPerBlock(T)
	cp := c.CPCommBytesPerBlock(T)
	if rel := math.Abs(tp/cp-32) / 32; rel > 1e-12 {
		t.Fatalf("TP/CP comm ratio = %v, want 32", tp/cp)
	}
}

func TestMissRate(t *testing.T) {
	if MissRate(0, 0) != 0 {
		t.Fatal("MissRate(0,0) should be 0")
	}
	if got := MissRate(1280, 126720); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("MissRate(1280,126720) = %v, want 0.01 (Table 4 first row)", got)
	}
	if MissRate(128000, 0) != 1 {
		t.Fatal("full prefill must have miss rate 1")
	}
}

// Property: attention FLOPs are monotone in both T and P, and the causal
// total is always at most the uncausal partial total across layers.
func TestPropertyFLOPsMonotone(t *testing.T) {
	c := Llama3405B()
	f := func(rawT, rawP uint16) bool {
		T := int(rawT)%10000 + 1
		P := int(rawP) % 10000
		if c.AttnFLOPsPartial(T+1, P) <= c.AttnFLOPsPartial(T, P) {
			return false
		}
		if c.AttnFLOPsPartial(T, P+1) <= c.AttnFLOPsPartial(T, P) {
			return false
		}
		causal := c.AttnFLOPsCausal(1, T)
		uncausal := c.AttnFLOPsFull(T) * float64(c.Layers)
		return causal <= uncausal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equation 1's RHS (2*NKV/NH) is exactly the miss-rate threshold at
// which QBytes(T) equals KVBytes(T, P).
func TestPropertyEquation1Threshold(t *testing.T) {
	for _, c := range []Config{Llama3405B(), Llama370B(), Tiny(), TinyMHA()} {
		f := func(rawT, rawP uint16) bool {
			T := int(rawT)%5000 + 1
			P := int(rawP) % 50000
			qSmaller := c.QBytes(T) <= c.KVBytes(T, P)
			threshold := MissRate(T, P) <= 2*c.KVRatio()
			return qSmaller == threshold
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestKVCacheBytesPerToken(t *testing.T) {
	c := Llama3405B()
	// 2 * 8 heads * 128 dim * 126 layers * 2 bytes = 516096 bytes/token.
	if got := c.KVCacheBytesPerToken(); got != 516096 {
		t.Fatalf("KVCacheBytesPerToken = %v, want 516096", got)
	}
}
