// Package quantize implements KV-cache quantization, the memory-side
// optimization the paper positions alongside context parallelism (§2.2):
// lower-precision KV formats bend the linear growth of the cache, extending
// how much context a fixed CP group can hold. Symmetric per-(token, head)
// scaling is used — the row-wise scheme of the paper's FP8 deployment —
// with INT8 and a simulated E4M3 FP8 codec.
//
// Quantization makes attention approximate rather than exact, so unlike the
// ring algorithms it is not lossless; the tests and the quant experiment
// quantify the output error against exact attention, and KVBytesPerToken
// quantifies the capacity gain.
package quantize

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Format is a storage precision for cached K/V.
type Format int

const (
	// BF16 is the baseline two-byte format (no quantization error here; the
	// functional layer stores float32 and BF16 rounding is not modeled).
	BF16 Format = iota
	// INT8 stores one signed byte per element with a per-(token, head) scale.
	INT8
	// FP8 simulates E4M3: 4 exponent bits, 3 mantissa bits, per-row scale.
	FP8
)

func (f Format) String() string {
	switch f {
	case BF16:
		return "bf16"
	case INT8:
		return "int8"
	case FP8:
		return "fp8-e4m3"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// Bytes returns the per-element storage of the format (scales amortize to
// one float per head-row and are ignored, as in deployed cache layouts).
func (f Format) Bytes() float64 {
	switch f {
	case BF16:
		return 2
	case INT8, FP8:
		return 1
	default:
		return 2
	}
}

// Quantized is a quantized [tokens, heads, dim] tensor.
type Quantized struct {
	Format      Format
	Tokens, Dim int
	Heads       int
	data        []int8    // INT8 codes or FP8 bit patterns (as int8)
	scales      []float32 // per (token, head)
	passthrough *tensor.Tensor
}

// Quantize encodes a tensor in the given format.
func Quantize(t *tensor.Tensor, f Format) (*Quantized, error) {
	q := &Quantized{Format: f, Tokens: t.Tokens, Heads: t.Heads, Dim: t.Dim}
	switch f {
	case BF16:
		q.passthrough = t.Clone()
		return q, nil
	case INT8:
		q.data = make([]int8, t.NumElements())
		q.scales = make([]float32, t.Tokens*t.Heads)
		for tok := 0; tok < t.Tokens; tok++ {
			for h := 0; h < t.Heads; h++ {
				row := t.Row(tok, h)
				var amax float64
				for _, v := range row {
					if a := math.Abs(float64(v)); a > amax {
						amax = a
					}
				}
				scale := float32(amax / 127)
				q.scales[tok*t.Heads+h] = scale
				base := (tok*t.Heads + h) * t.Dim
				if scale == 0 {
					continue
				}
				for d, v := range row {
					code := math.Round(float64(v) / float64(scale))
					if code > 127 {
						code = 127
					}
					if code < -127 {
						code = -127
					}
					q.data[base+d] = int8(code)
				}
			}
		}
		return q, nil
	case FP8:
		q.data = make([]int8, t.NumElements())
		q.scales = make([]float32, t.Tokens*t.Heads)
		for tok := 0; tok < t.Tokens; tok++ {
			for h := 0; h < t.Heads; h++ {
				row := t.Row(tok, h)
				var amax float64
				for _, v := range row {
					if a := math.Abs(float64(v)); a > amax {
						amax = a
					}
				}
				// Scale the row so its max lands at E4M3's max normal (448).
				scale := float32(amax / 448)
				q.scales[tok*t.Heads+h] = scale
				base := (tok*t.Heads + h) * t.Dim
				if scale == 0 {
					continue
				}
				for d, v := range row {
					q.data[base+d] = encodeE4M3(float64(v) / float64(scale))
				}
			}
		}
		return q, nil
	default:
		return nil, fmt.Errorf("quantize: unknown format %v", f)
	}
}

// Dequantize reconstructs a float32 tensor.
func (q *Quantized) Dequantize() *tensor.Tensor {
	if q.Format == BF16 {
		return q.passthrough.Clone()
	}
	out := tensor.New(q.Tokens, q.Heads, q.Dim)
	for tok := 0; tok < q.Tokens; tok++ {
		for h := 0; h < q.Heads; h++ {
			scale := q.scales[tok*q.Heads+h]
			base := (tok*q.Heads + h) * q.Dim
			row := out.Row(tok, h)
			for d := range row {
				switch q.Format {
				case INT8:
					row[d] = float32(q.data[base+d]) * scale
				case FP8:
					row[d] = float32(decodeE4M3(q.data[base+d])) * scale
				}
			}
		}
	}
	return out
}

// encodeE4M3 rounds x to the nearest E4M3 representable value and returns
// its bit pattern (sign, 4-bit exponent with bias 7, 3-bit mantissa).
func encodeE4M3(x float64) int8 {
	if x == 0 || math.IsNaN(x) {
		return 0
	}
	sign := int8(0)
	if x < 0 {
		sign = -0x80 // sign bit
		x = -x
	}
	if x > 448 {
		x = 448
	}
	exp := math.Floor(math.Log2(x))
	if exp < -6 {
		// Subnormal: mantissa steps of 2^-9.
		m := math.Round(x / math.Pow(2, -9))
		if m > 7 {
			m = 7
		}
		return sign | int8(m)
	}
	if exp > 8 {
		exp = 8
	}
	mant := math.Round(x/math.Pow(2, exp)*8) - 8 // fractional part in [0,8)
	if mant >= 8 {
		exp++
		mant = 0
		if exp > 8 {
			exp = 8
			mant = 7
		}
	}
	if mant < 0 {
		mant = 0
	}
	e := int8(exp+7) << 3
	return sign | e | int8(mant)
}

// decodeE4M3 inverts encodeE4M3.
func decodeE4M3(b int8) float64 {
	neg := b&-0x80 != 0
	u := uint8(b) & 0x7F
	exp := int(u >> 3)
	mant := float64(u & 7)
	var x float64
	if exp == 0 {
		x = mant * math.Pow(2, -9)
	} else {
		x = (1 + mant/8) * math.Pow(2, float64(exp-7))
	}
	if neg {
		x = -x
	}
	return x
}

// MaxRelError returns the maximum per-row relative reconstruction error
// (|x̂−x|∞ per row divided by that row's |x|∞), the quantity the format's
// error bound constrains.
func MaxRelError(orig, recon *tensor.Tensor) float64 {
	worst := 0.0
	for tok := 0; tok < orig.Tokens; tok++ {
		for h := 0; h < orig.Heads; h++ {
			a := orig.Row(tok, h)
			b := recon.Row(tok, h)
			var amax, diff float64
			for d := range a {
				if v := math.Abs(float64(a[d])); v > amax {
					amax = v
				}
				if v := math.Abs(float64(a[d]) - float64(b[d])); v > diff {
					diff = v
				}
			}
			if amax == 0 {
				continue
			}
			if r := diff / amax; r > worst {
				worst = r
			}
		}
	}
	return worst
}

// CapacityGain returns how much more context a KV cache holds at the format
// versus BF16.
func CapacityGain(f Format) float64 { return BF16.Bytes() / f.Bytes() }
