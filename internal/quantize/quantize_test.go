package quantize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attention"
	"repro/internal/tensor"
)

func TestFormatBytes(t *testing.T) {
	if BF16.Bytes() != 2 || INT8.Bytes() != 1 || FP8.Bytes() != 1 {
		t.Fatal("format byte widths wrong")
	}
	if CapacityGain(INT8) != 2 || CapacityGain(BF16) != 1 {
		t.Fatal("capacity gains wrong")
	}
	if INT8.String() != "int8" || FP8.String() != "fp8-e4m3" {
		t.Fatal("format names wrong")
	}
}

func TestBF16Passthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 4, 2, 8)
	q, err := Quantize(x, BF16)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(x, q.Dequantize()); d != 0 {
		t.Fatalf("bf16 passthrough changed values by %v", d)
	}
}

func TestINT8ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 16, 4, 16)
	q, err := Quantize(x, INT8)
	if err != nil {
		t.Fatal(err)
	}
	rel := MaxRelError(x, q.Dequantize())
	// Symmetric int8: error <= scale/2 = amax/254 per row.
	if rel > 1.0/254+1e-6 {
		t.Fatalf("int8 relative error %v exceeds bound %v", rel, 1.0/254)
	}
	if rel == 0 {
		t.Fatal("int8 quantization reported zero error on random data")
	}
}

func TestFP8ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 16, 4, 16)
	q, err := Quantize(x, FP8)
	if err != nil {
		t.Fatal(err)
	}
	rel := MaxRelError(x, q.Dequantize())
	// E4M3 relative precision is 2^-4 per value at worst near the bottom of
	// a binade; per-row normalization keeps values in range.
	if rel > 0.07 {
		t.Fatalf("fp8 relative error %v too large", rel)
	}
}

func TestZeroRowsSurvive(t *testing.T) {
	x := tensor.New(3, 2, 4)
	for _, f := range []Format{INT8, FP8} {
		q, err := Quantize(x, f)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(x, q.Dequantize()); d != 0 {
			t.Fatalf("%v: zero tensor reconstructed with diff %v", f, d)
		}
	}
}

func TestE4M3RoundTripValues(t *testing.T) {
	// Exactly representable values must round-trip bit-exactly.
	for _, v := range []float64{0, 1, -1, 2, 448, -448, 0.5, 1.5, -3.5, 0.015625} {
		got := decodeE4M3(encodeE4M3(v))
		if got != v {
			t.Fatalf("E4M3 round trip of %v gave %v", v, got)
		}
	}
	// Values above max normal clamp to 448.
	if got := decodeE4M3(encodeE4M3(10000)); got != 448 {
		t.Fatalf("clamp gave %v", got)
	}
}

func TestPropertyE4M3Monotoneish(t *testing.T) {
	// Quantization error is bounded by half the representable step: an
	// eighth of the binade for normal values, and the fixed 2^-9 subnormal
	// granularity below the min normal 2^-6 (the binade bound is tighter
	// than the format there, so tiny inputs would flakily fail it).
	f := func(raw uint16) bool {
		x := float64(raw)/100 + 0.001 // (0, 655]
		exp := math.Floor(math.Log2(x))
		if exp < -6 {
			exp = -6
		}
		step := math.Pow(2, exp) / 8
		return math.Abs(decodeE4M3(encodeE4M3(x))-x) <= step/2+1e-12 || x > 448
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The downstream question: how much does quantized KV perturb attention
// output? INT8 must stay within ~1% on random workloads.
func TestAttentionErrorUnderQuantizedKV(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	T := 12
	q := tensor.RandN(rng, T, 8, 8)
	k := tensor.RandN(rng, T, 2, 8)
	v := tensor.RandN(rng, T, 2, 8)
	m := attention.FullCausal(T)
	exact, err := attention.GQA(q, k, v, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{INT8, FP8} {
		kq, err := Quantize(k, f)
		if err != nil {
			t.Fatal(err)
		}
		vq, err := Quantize(v, f)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := attention.GQA(q, kq.Dequantize(), vq.Dequantize(), m)
		if err != nil {
			t.Fatal(err)
		}
		d := tensor.MaxAbsDiff(exact.O, approx.O)
		if d == 0 {
			t.Fatalf("%v: suspiciously exact", f)
		}
		if d > 0.15 {
			t.Fatalf("%v: attention output error %v too large", f, d)
		}
	}
}

func TestPropertyINT8RowScaleInvariance(t *testing.T) {
	// Scaling a row by a positive constant scales the reconstruction by the
	// same constant (symmetric per-row quantization is scale-equivariant).
	f := func(seed int64, rawScale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := float32(rawScale%50) + 1
		x := tensor.RandN(rng, 2, 1, 8)
		y := x.Clone()
		y.Scale(scale)
		qx, err1 := Quantize(x, INT8)
		qy, err2 := Quantize(y, INT8)
		if err1 != nil || err2 != nil {
			return false
		}
		rx := qx.Dequantize()
		ry := qy.Dequantize()
		for i := range rx.Data {
			if math.Abs(float64(rx.Data[i]*scale-ry.Data[i])) > 1e-3*float64(scale) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
