package repro_test

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/tensor"
)

// The public facade must carry the full workflow of the README quickstart.
func TestFacadeQuickstartFlow(t *testing.T) {
	m := repro.TinyModel()
	engine, err := repro.NewEngine(repro.EngineConfig{
		Model: m, Ranks: 3, Policy: repro.Force(repro.PassKV), TrackHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	req := &repro.PrefillRequest{
		SeqIDs: []int{0}, Lens: []int{12},
		Q: tensor.RandN(rng, 12, m.NumHeads, m.HeadDim),
		K: tensor.RandN(rng, 12, m.NumKV, m.HeadDim),
		V: tensor.RandN(rng, 12, m.NumKV, m.HeadDim),
	}
	res, err := engine.Prefill(req)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Reference(0, req.Q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(res.Output, ref); d > 1e-4 {
		t.Fatalf("facade prefill deviates by %v", d)
	}
}

func TestFacadeHeuristics(t *testing.T) {
	in := repro.NewHeuristicInputs(repro.Llama3405B(), repro.GTT(), 4)
	if repro.Algorithm1(in, 128000, 0) != repro.PassKV {
		t.Fatal("Algorithm1 full prefill should be pass-KV")
	}
	if repro.Algorithm5(in, 1280, 126720) != repro.PassQ {
		t.Fatal("Algorithm5 at 1% miss should be pass-Q")
	}
	if repro.PaperEmpirical().Beta <= 0 {
		t.Fatal("paper empirical constants wrong")
	}
}

func TestFacadePerfSystem(t *testing.T) {
	s := repro.System{Model: repro.Llama3405B(), Plat: repro.GTT(), CPNodes: 16, TPNodes: 1}
	ttft := s.Prefill(1_000_000, 0, repro.PassKV).Total
	if ttft < 60 || ttft > 90 {
		t.Fatalf("1M TTFT = %v, want near the paper's 77 s", ttft)
	}
	plan, err := repro.PlanDeployment(repro.PlanRequest{
		Model: repro.Llama3405B(), Plat: repro.GTT(), Context: 128000, TTFTTarget: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.System.CPNodes != 4 {
		t.Fatalf("plan chose CP%d for a 12 s target", plan.System.CPNodes)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	ids := repro.Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	tab, err := repro.RunExperiment("mfu")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("mfu experiment empty")
	}
	if _, err := repro.RunExperiment("not-an-experiment"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeTransformerGeneration(t *testing.T) {
	w, err := repro.NewTransformer(repro.TinyTransformer(55))
	if err != nil {
		t.Fatal(err)
	}
	c, err := repro.NewTransformerCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{8, 2, 33, 17}
	got, err := c.Generate(0, prompt, 4, repro.PassKV)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.GenerateReference(prompt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("facade generation %v != reference %v", got, want)
		}
	}
	if repro.Argmax([]float32{0.1, 3, -2}) != 1 {
		t.Fatal("Argmax wrong")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	gen := repro.NewWorkloadGenerator(9)
	conv := gen.Chat(2, 3, 10, 20, 1, 4, 2)
	if err := conv.Validate(); err != nil {
		t.Fatal(err)
	}
	if conv.NumSeqs != 2 || len(conv.Turns) != 3 {
		t.Fatalf("conversation shape: %+v", conv)
	}
}
