package repro

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/tensor"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Functional engine (the paper's algorithms, runnable).
// ---------------------------------------------------------------------------

// Engine is a running context-parallel group with persistent multi-turn
// state. Construct with NewEngine; drive with Prefill and Decode.
type Engine = core.Engine

// EngineConfig sizes an Engine.
type EngineConfig = core.Config

// Policy selects the ring variant for each prefill.
type Policy = core.Policy

// PrefillRequest is a fused batch of new tokens.
type PrefillRequest = core.PrefillRequest

// PrefillResult is the fused exact attention output plus the variant used.
type PrefillResult = core.PrefillResult

// DecodeRequest is one batched decode step (one token per sequence).
type DecodeRequest = core.DecodeRequest

// DecodeResult carries per-sequence decode outputs.
type DecodeResult = core.DecodeResult

// NewEngine builds a context-parallel engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.New(cfg) }

// Force returns a policy pinned to one ring variant.
func Force(v Variant) Policy { return core.Force(v) }

// PolicyFunc adapts a selector function into a Policy.
func PolicyFunc(name string, fn func(T, P int) Variant) Policy { return core.PolicyFunc(name, fn) }

// Tensor is the dense [tokens, heads, headDim] float32 tensor the engine
// consumes and produces.
type Tensor = tensor.Tensor

// NewTensor allocates a zero tensor.
func NewTensor(tokens, heads, dim int) *Tensor { return tensor.New(tokens, heads, dim) }

// ---------------------------------------------------------------------------
// Model configurations (Table 9 and friends).
// ---------------------------------------------------------------------------

// ModelConfig describes a dense GQA transformer.
type ModelConfig = model.Config

// Llama3405B returns the paper's evaluation model (Table 9).
func Llama3405B() ModelConfig { return model.Llama3405B() }

// Llama370B returns the 70B configuration.
func Llama370B() ModelConfig { return model.Llama370B() }

// Llama38B returns the 8B configuration.
func Llama38B() ModelConfig { return model.Llama38B() }

// TinyModel returns a small GQA config for functional runs and tests.
func TinyModel() ModelConfig { return model.Tiny() }

// ---------------------------------------------------------------------------
// Performance model (the paper's evaluation numbers).
// ---------------------------------------------------------------------------

// Variant selects between ring pass-KV and ring pass-Q.
type Variant = perf.Variant

// PassKV and PassQ are the two lossless ring attention variants.
const (
	PassKV = perf.PassKV
	PassQ  = perf.PassQ
)

// System is a modeled deployment: CP ranks of TP hosts on a platform.
type System = perf.System

// PrefillBreakdown decomposes a TTFT prediction.
type PrefillBreakdown = perf.PrefillBreakdown

// DecodeBreakdown decomposes a TTIT prediction.
type DecodeBreakdown = perf.DecodeBreakdown

// Platform describes a hardware fabric.
type Platform = hw.Platform

// GTT returns the Grand Teton Training platform (H100 + 400 Gb/s RDMA).
func GTT() Platform { return hw.GTT() }

// GTI returns the Grand Teton Inference platform (H100 + 100 Gb/s TCP).
func GTI() Platform { return hw.GTI() }

// ---------------------------------------------------------------------------
// Heuristics (§3.4, Appendices C-D).
// ---------------------------------------------------------------------------

// HeuristicInputs carries the model shape and per-rank rates the analytical
// heuristics need.
type HeuristicInputs = heuristic.Inputs

// NewHeuristicInputs derives heuristic inputs from a platform.
func NewHeuristicInputs(m ModelConfig, p Platform, n int) HeuristicInputs {
	return heuristic.NewInputs(m, p, n)
}

// Algorithm1 is the paper's partial-prefill variant selector.
func Algorithm1(in HeuristicInputs, T, P int) Variant { return heuristic.Algorithm1(in, T, P) }

// Algorithm5 is the All2All-aware refinement (Appendix C).
func Algorithm5(in HeuristicInputs, T, P int) Variant { return heuristic.Algorithm5(in, T, P) }

// Empirical is the fitted log-linear selector of Appendix D.
type Empirical = heuristic.Empirical

// PaperEmpirical returns the constants the paper reports.
func PaperEmpirical() Empirical { return heuristic.PaperEmpirical() }

// FitEmpirical fits selector constants to labeled workloads.
func FitEmpirical(points []heuristic.LabeledPoint) (Empirical, error) {
	return heuristic.FitEmpirical(points)
}

// ---------------------------------------------------------------------------
// End-to-end transformer (token ids in, logits out).
// ---------------------------------------------------------------------------

// TransformerConfig describes a Llama-architecture model for end-to-end
// runs: embeddings, RMSNorm, RoPE, GQA, SwiGLU, output head.
type TransformerConfig = transformer.Config

// TransformerWeights holds deterministic model parameters shared by the
// reference forward pass and the distributed cluster.
type TransformerWeights = transformer.Weights

// TransformerCluster executes the transformer across CP ranks with ring
// attention on every layer.
type TransformerCluster = transformer.Cluster

// TinyTransformer returns a laptop-scale Llama-architecture configuration.
func TinyTransformer(seed int64) TransformerConfig { return transformer.Tiny(seed) }

// NewTransformer initializes deterministic weights.
func NewTransformer(cfg TransformerConfig) (*TransformerWeights, error) {
	return transformer.NewWeights(cfg)
}

// NewTransformerCluster builds an N-rank context-parallel execution.
func NewTransformerCluster(w *TransformerWeights, ranks int) (*TransformerCluster, error) {
	return transformer.NewCluster(w, ranks)
}

// Argmax returns the greedy token for a logits vector.
func Argmax(logits []float32) int { return transformer.Argmax(logits) }

// ---------------------------------------------------------------------------
// Deployment planning.
// ---------------------------------------------------------------------------

// PlanRequest states serving constraints for PlanDeployment.
type PlanRequest = perf.PlanRequest

// Plan is a deployment recommendation.
type Plan = perf.Plan

// PlanDeployment returns the smallest CP group meeting the capacity and
// TTFT constraints, with TTIT diagnostics (§4.3's prefill/decode tension).
func PlanDeployment(req PlanRequest) (Plan, error) { return perf.PlanDeployment(req) }

// ---------------------------------------------------------------------------
// Workloads and experiments.
// ---------------------------------------------------------------------------

// Conversation is a multi-turn synthetic workload.
type Conversation = workload.Conversation

// NewWorkloadGenerator returns a deterministic workload generator.
func NewWorkloadGenerator(seed int64) *workload.Generator { return workload.NewGenerator(seed) }

// ExperimentTable is one regenerated paper table or figure.
type ExperimentTable = experiments.Table

// Experiments returns the ids of every reproducible table and figure.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure by id (e.g. "table4",
// "fig6a", "mfu").
func RunExperiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }
