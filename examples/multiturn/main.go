// Multiturn: the paper's headline inference scenario — a long document
// prefill followed by several short follow-up prompts against the persistent
// sharded KV cache, with Algorithm 1 switching between ring pass-KV and
// ring pass-Q as the cache hit rate climbs. Every turn is verified lossless.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/tensor"
)

func main() {
	m := repro.TinyModel()
	// Wire the paper's Algorithm 1 with Llama3-405B/GTT rates; functional
	// token counts are scaled up so the thresholds are in-regime.
	in := repro.NewHeuristicInputs(repro.Llama3405B(), repro.GTT(), 2)
	const scale = 300
	policy := repro.PolicyFunc("algorithm-1", func(T, P int) repro.Variant {
		return repro.Algorithm1(in, T*scale, P*scale)
	})
	engine, err := repro.NewEngine(repro.EngineConfig{
		Model: m, Ranks: 2, Policy: policy, TrackHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	gen := repro.NewWorkloadGenerator(7)
	conv := gen.Chat(2 /*seqs*/, 4 /*turns*/, 30, 40, 2, 4, 2 /*decode per turn*/)

	fmt.Println("multi-turn chat over 2 CP ranks, Algorithm 1 variant selection")
	fmt.Println("turn | T (new) | P (cached) | miss rate | variant  | max |Δ|")
	fmt.Println("-----+---------+------------+-----------+----------+---------")
	ids := []int{0, 1}
	for turnIdx, turn := range conv.Turns {
		total := 0
		for _, l := range turn.NewTokens {
			total += l
		}
		pBefore := []int{engine.SeqLen(0), engine.SeqLen(1)}
		req := &repro.PrefillRequest{
			SeqIDs: ids, Lens: turn.NewTokens,
			Q: tensor.RandN(rng, total, m.NumHeads, m.HeadDim),
			K: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
			V: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
		}
		res, err := engine.Prefill(req)
		if err != nil {
			log.Fatal(err)
		}
		worst, off := 0.0, 0
		for i, id := range ids {
			ref, err := engine.Reference(id, req.Q.SliceTokens(off, off+turn.NewTokens[i]), pBefore[i])
			if err != nil {
				log.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(ref, res.Output.SliceTokens(off, off+turn.NewTokens[i])); d > worst {
				worst = d
			}
			off += turn.NewTokens[i]
		}
		miss := float64(res.T) / float64(res.T+res.P)
		fmt.Printf("%4d | %7d | %10d | %8.1f%% | %-8v | %.2g\n",
			turnIdx+1, res.T, res.P, miss*100, res.Variant, worst)

		// Decode a short response after each prompt; its KV lands in the
		// cache and raises the next turn's hit rate.
		for s := 0; s < turn.DecodeSteps; s++ {
			dreq := &repro.DecodeRequest{
				SeqIDs: ids,
				Q:      tensor.RandN(rng, 2, m.NumHeads, m.HeadDim),
				K:      tensor.RandN(rng, 2, m.NumKV, m.HeadDim),
				V:      tensor.RandN(rng, 2, m.NumKV, m.HeadDim),
			}
			if _, err := engine.Decode(dreq); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("\nvariant usage: pass-KV x%d, pass-Q x%d\n",
		engine.Trace().Counter("prefill.pass-KV"), engine.Trace().Counter("prefill.pass-Q"))
	fmt.Println("the first (document) turn rides pass-KV; short follow-ups against the")
	fmt.Println("now-large cache cross Equation 1's miss-rate threshold and ride pass-Q.")
}
