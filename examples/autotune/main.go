// Autotune: the Appendix D methodology end to end — label a grid of
// (new tokens, cache miss rate) workloads with the performance-model oracle,
// fit the log-linear empirical selector h(T,P) = α·ln T + β·ln(T/(T+P)) + γ,
// and compare it against Algorithm 1, Algorithm 5 and the paper's published
// constants. Prints the Figure 10 style decision boundary.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/heuristic"
	"repro/internal/perf"
)

func main() {
	sys := repro.System{Model: repro.Llama3405B(), Plat: repro.GTT(), CPNodes: 4, TPNodes: 1}
	gen := repro.NewWorkloadGenerator(13)

	// Label a log-spaced grid with the oracle (which variant the perf model
	// predicts to be faster).
	pts := gen.LogGrid(256, 262144, 0.002, 1.0, 16, 12)
	grid := make([]heuristic.LabeledPoint, 0, len(pts))
	for _, p := range pts {
		best, _, _ := sys.PrefillBest(p.T, p.P)
		grid = append(grid, heuristic.LabeledPoint{T: p.T, P: p.P, Best: best})
	}
	fit, err := repro.FitEmpirical(grid)
	if err != nil {
		log.Fatal(err)
	}
	paper := repro.PaperEmpirical()

	fmt.Println("empirical selector fit (Appendix D)")
	fmt.Printf("  fitted: alpha=%.3f beta=%.3f gamma=%.3f\n", fit.Alpha, fit.Beta, fit.Gamma)
	fmt.Printf("  paper:  alpha=%.3f beta=%.3f gamma=%.3f\n", paper.Alpha, paper.Beta, paper.Gamma)
	fmt.Println("  (beta > 0 in both: higher miss rate pushes toward pass-KV)")

	in := repro.NewHeuristicInputs(repro.Llama3405B(), repro.GTT(), 4)
	selectors := []struct {
		name string
		sel  heuristic.Selector
	}{
		{"Algorithm 1", func(T, P int) repro.Variant { return repro.Algorithm1(in, T, P) }},
		{"Algorithm 5", func(T, P int) repro.Variant { return repro.Algorithm5(in, T, P) }},
		{"fitted empirical", fit.Choose},
		{"always pass-KV", func(int, int) repro.Variant { return repro.PassKV }},
		{"always pass-Q", func(int, int) repro.Variant { return repro.PassQ }},
	}
	fmt.Println()
	fmt.Println("selector          | accuracy | mean regret | worst regret")
	fmt.Println("------------------+----------+-------------+-------------")
	for _, s := range selectors {
		ev := heuristic.Evaluate(sys, s.sel, grid)
		fmt.Printf("%-17s | %7.1f%% | %10.2f%% | %11.2f%%\n",
			s.name, ev.Accuracy()*100, ev.MeanRegret*100, ev.WorstRegret*100)
	}

	// Decision boundary: for each T, the miss rate where the fitted model
	// flips from pass-Q to pass-KV (Figure 10's separating line).
	fmt.Println()
	fmt.Println("fitted decision boundary (miss-rate threshold per T):")
	for _, T := range []int{512, 2048, 8192, 32768, 131072} {
		thr := fit.MissRateThreshold(T)
		verdictAbove, _, _ := sys.PrefillBest(T, int(float64(T)/clamp(thr*1.5))-T)
		_ = verdictAbove
		fmt.Printf("  T=%-7d -> switch to pass-KV above %.2f%% miss rate\n", T, clampPct(thr))
	}

	// Sanity: the three decision procedures agree on the extremes.
	fmt.Println()
	for _, c := range []struct {
		name string
		T, P int
	}{
		{"full 128K prefill", 128000, 0},
		{"1% miss follow-up", 1280, 126720},
	} {
		fmt.Printf("%-18s alg1=%v alg5=%v fitted=%v oracle=%v\n", c.name,
			repro.Algorithm1(in, c.T, c.P), repro.Algorithm5(in, c.T, c.P),
			fit.Choose(c.T, c.P), oracle(sys, c.T, c.P))
	}
}

func oracle(sys repro.System, T, P int) repro.Variant {
	v, _, _ := sys.PrefillBest(T, P)
	return v
}

func clamp(x float64) float64 {
	if x < 1e-6 {
		return 1e-6
	}
	return x
}

func clampPct(x float64) float64 {
	x *= 100
	if x > 100 {
		return 100
	}
	if x < 0 {
		return 0
	}
	return x
}

var _ = perf.PassKV // keep explicit dependency for documentation purposes
