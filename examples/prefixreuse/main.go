// Prefixreuse: a load driver for the prefix KV-reuse subsystem. N concurrent
// sessions share one long system prompt (differing only in a short user
// suffix) and one session reconnects for a multi-turn follow-up after its
// DELETE — the two workloads the paper's multi-turn story (§3.3, 85% hit
// rates) is about. A donor session detaches the shared prefix into the
// radix tree on release; every later session adopts it and ring-prefills
// only its miss suffix. The driver verifies every served stream is
// bit-identical to a cold-start reference (a fresh server with prefix reuse
// disabled) and prints the hit rate and TTFT delta the reuse bought.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"repro/internal/perf"
	"repro/internal/server"
	"repro/internal/transformer"
)

const (
	ranks     = 2
	seed      = 77
	clients   = 6
	maxTokens = 8
	systemLen = 64 // shared system prompt, a multiple of the chunk budget
	userLen   = 6  // per-session user suffix
	budget    = 16 // chunk budget == prefix-tree block size
)

type genReq struct {
	Session   int   `json:"session"`
	Prompt    []int `json:"prompt"`
	MaxTokens int   `json:"max_tokens"`
}

type genResp struct {
	Tokens []int     `json:"tokens"`
	TTFTMs float64   `json:"ttft_ms"`
	TTITMs []float64 `json:"ttit_ms"`
}

type statsResp struct {
	PrefillSource struct {
		CachedTokens   int64   `json:"cached_tokens"`
		ComputedTokens int64   `json:"computed_tokens"`
		HitRate        float64 `json:"hit_rate"`
	} `json:"prefill_source"`
	Reuse struct {
		Hits           int64 `json:"hits"`
		Detached       int64 `json:"detached"`
		DetachedTokens int64 `json:"detached_tokens"`
	} `json:"reuse"`
}

func newServer(prefixTokens int) (*server.Server, *httptest.Server) {
	srv, err := server.New(server.Config{
		Transformer:       transformer.Tiny(seed),
		Ranks:             ranks,
		Policy:            server.PrefillFirst,
		Variant:           perf.Auto, // Eq. 1 per chunk: warm chunks ride pass-Q
		TokenBudget:       budget,
		PrefixCacheTokens: prefixTokens,
	})
	if err != nil {
		log.Fatal(err)
	}
	return srv, httptest.NewServer(srv.Handler())
}

func generate(ts *httptest.Server, session int, prompt []int) genResp {
	body, _ := json.Marshal(genReq{Session: session, Prompt: prompt, MaxTokens: maxTokens})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("session %d: status %d", session, resp.StatusCode)
	}
	var out genResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

func release(ts *httptest.Server, session int) {
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/session/%d", ts.URL, session), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}

func main() {
	system := make([]int, systemLen)
	for i := range system {
		system[i] = (i*13 + 7) % 64
	}
	prompts := make([][]int, clients)
	for i := range prompts {
		p := append([]int{}, system...)
		for j := 0; j < userLen; j++ {
			p = append(p, (i*17+j*5+3)%64)
		}
		prompts[i] = p
	}

	fmt.Printf("prefix reuse: %d sessions sharing a %d-token system prompt (+%d-token user turns),\n",
		clients, systemLen, userLen)
	fmt.Printf("%d CP ranks, budget/block %d, variant auto\n\n", ranks, budget)

	// Cold references: a server with prefix reuse disabled serves every
	// prompt from scratch.
	coldSrv, coldTS := newServer(-1)
	defer func() { coldTS.Close(); coldSrv.Close() }()
	cold := make([]genResp, clients)
	for i := range prompts {
		cold[i] = generate(coldTS, i, prompts[i])
	}

	// Warm server: session 0 donates the shared prefix on DELETE, then the
	// remaining sessions arrive concurrently.
	warmSrv, warmTS := newServer(1 << 16)
	defer func() { warmTS.Close(); warmSrv.Close() }()
	donor := generate(warmTS, 0, prompts[0])
	release(warmTS, 0)

	warm := make([]genResp, clients)
	var wg sync.WaitGroup
	for i := 1; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			warm[id] = generate(warmTS, id, prompts[id])
		}(i)
	}
	wg.Wait()

	// Multi-turn reconnect: session 0 comes back with its whole first turn
	// as context (prompt + served tokens) plus a follow-up.
	turn2 := append(append([]int{}, prompts[0]...), donor.Tokens...)
	turn2 = append(turn2, 1, 2, 3)
	reconnect := generate(warmTS, 0, turn2)
	coldReconnect := generate(coldTS, 100, turn2)

	// Exact verification: warm streams must be bit-identical to cold-start
	// references. Prefill logits are session-id independent, so the cold
	// reconnect reference uses a fresh id and only its first (prefill-
	// produced) token is comparable; decode placement is per-session.
	check := func(name string, got, want []int) {
		for j := range want {
			if got[j] != want[j] {
				log.Fatalf("%s diverged from cold reference: %v != %v", name, got, want)
			}
		}
	}
	warm[0] = donor
	for i := 0; i < clients; i++ {
		check(fmt.Sprintf("session %d", i), warm[i].Tokens, cold[i].Tokens)
	}
	check("reconnect prefill", reconnect.Tokens[:1], coldReconnect.Tokens[:1])
	fmt.Printf("all %d warm streams bit-identical to cold-start references\n\n", clients)

	// Telemetry: hit rate and the TTFT the tree bought.
	resp, err := http.Get(warmTS.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st statsResp
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	var coldTTFT, warmTTFT float64
	for i := 1; i < clients; i++ {
		coldTTFT += cold[i].TTFTMs
		warmTTFT += warm[i].TTFTMs
	}
	coldTTFT /= clients - 1
	warmTTFT /= clients - 1

	fmt.Println("prefix-reuse telemetry")
	fmt.Println("----------------------")
	fmt.Printf("prefill tokens cached    %6d\n", st.PrefillSource.CachedTokens)
	fmt.Printf("prefill tokens computed  %6d\n", st.PrefillSource.ComputedTokens)
	fmt.Printf("hit rate                 %7.1f%%\n", st.PrefillSource.HitRate*100)
	fmt.Printf("donations                %6d  (%d tokens detached into the tree)\n",
		st.Reuse.Detached, st.Reuse.DetachedTokens)
	fmt.Printf("sibling TTFT             %7.2f ms warm vs %.2f ms cold (%.1fx)\n",
		warmTTFT, coldTTFT, coldTTFT/warmTTFT)
	fmt.Printf("reconnect TTFT           %7.2f ms warm vs %.2f ms cold (%.1fx)\n",
		reconnect.TTFTMs, coldReconnect.TTFTMs, coldReconnect.TTFTMs/reconnect.TTFTMs)

	if st.Reuse.Hits == 0 || st.PrefillSource.CachedTokens == 0 {
		log.Fatal("no prefix reuse observed — subsystem regression?")
	}
	fmt.Println("\nthe shared system prompt was ring-prefilled once and adopted everywhere")
	fmt.Println("else; reconnects resumed from warm KV. That is the multi-turn economics")
	fmt.Println("of §3.3: hit tokens cost a radix-tree walk instead of a ring pass.")
}
