// Milliontoken: reproduce the paper's headline result with the calibrated
// performance model — a 1M-token Llama3 405B prefill across 128 H100 GPUs
// (16 CP nodes) in ~77 s at ~93% parallelization efficiency — and show how
// TTFT and KV capacity scale from 1 to 16 nodes.
package main

import (
	"fmt"

	"repro"
)

func main() {
	m := repro.Llama3405B()
	plat := repro.GTT()

	fmt.Println("Llama3 405B full prefill on Grand Teton Training (H100, RDMA 400 Gb/s)")
	fmt.Println()
	fmt.Println("nodes | GPUs | 128K TTFT (s) | 1M TTFT (s) | KV capacity (tokens) | fits 1M?")
	fmt.Println("------+------+---------------+-------------+----------------------+---------")
	for _, n := range []int{1, 2, 4, 8, 16} {
		s := repro.System{Model: m, Plat: plat, CPNodes: n, TPNodes: 1}
		cap := s.KVCapacityTokens()
		oneM := "-"
		fits := "no"
		if cap >= 1_000_000 {
			oneM = fmt.Sprintf("%.1f", s.Prefill(1_000_000, 0, repro.PassKV).Total)
			fits = "yes"
		}
		fmt.Printf("%5d | %4d | %13.2f | %11s | %20.0f | %s\n",
			n, 8*n, s.Prefill(128_000, 0, repro.PassKV).Total, oneM, cap, fits)
	}

	cp16 := repro.System{Model: m, Plat: plat, CPNodes: 16, TPNodes: 1}
	perGPU, util := cp16.MFU(1_000_000, repro.PassKV)
	fmt.Println()
	fmt.Printf("CP16 at 1M context: %.1f s TTFT (paper: 77 s)\n",
		cp16.Prefill(1_000_000, 0, repro.PassKV).Total)
	fmt.Printf("achieved %.0f TF/s per H100 (paper: 502), %.0f%% of BF16 peak (paper: ~63%%)\n",
		perGPU/1e12, util*100)
	fmt.Printf("parallelization efficiency vs standalone attention kernel: %.0f%% (paper: 93%%)\n",
		cp16.ParallelEfficiency(1_000_000, repro.PassKV)*100)

	// The quadratic-attention regime: TTFT more than doubles per context
	// doubling beyond 512K (Figure 8's note).
	fmt.Println()
	fmt.Println("context scaling on CP16 (Figure 8):")
	prev := 0.0
	for _, ctx := range []int{128_000, 256_000, 512_000, 1_000_000} {
		ttft := cp16.Prefill(ctx, 0, repro.PassKV).Total
		growth := ""
		if prev > 0 {
			growth = fmt.Sprintf("  (%.2fx over previous)", ttft/prev)
		}
		fmt.Printf("  %8d tokens: %6.2f s%s\n", ctx, ttft, growth)
		prev = ttft
	}

	// TCP fabric: the paper's robustness claim — pass-KV still overlaps.
	gti := repro.System{Model: m, Plat: repro.GTI(), CPNodes: 4, TPNodes: 1}
	gtt := repro.System{Model: m, Plat: plat, CPNodes: 4, TPNodes: 1}
	fmt.Println()
	fmt.Printf("fabric robustness at 128K, CP4: GTT %.2f s vs GTI (TCP) %.2f s\n",
		gtt.Prefill(128_000, 0, repro.PassKV).Total,
		gti.Prefill(128_000, 0, repro.PassKV).Total)
	fmt.Println("(the ~3 GB/s achieved TCP bandwidth still hides ring pass-KV under attention)")
}
