// Command distributed demonstrates the multi-process CP transport: it
// spawns a 3-rank localhost cluster (each rank a separate OS process — this
// binary re-executed in worker mode), drives the identical workload through
// the distributed coordinator and an in-process reference cluster, and
// asserts bit-identical logits and decode streams across pass-KV, pass-Q,
// perf.Auto, fused batched decode, and warm prefix-adopted prefill.
//
// It then breaks the measured communication down against the paper's
// Table 2 cost model: the modeled (accounted) ring bytes of a cold pass-KV
// prefill must equal the analytic formula exactly, and the wire-level
// counters show what the TCP framing, metadata, and heartbeats add on top.
//
// Run:
//
//	go run ./examples/distributed
package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/perf"
	"repro/internal/transformer"
)

const (
	workerEnv = "CP_DISTRIBUTED_EXAMPLE_RANK"
	ranks     = 3
	seed      = 21
)

func main() {
	if env := os.Getenv(workerEnv); env != "" {
		runWorker(env)
		return
	}
	if err := runCoordinator(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

// runWorker is the child-process body: one CP rank on an ephemeral port,
// rendezvousing over stdin/stdout.
func runWorker(env string) {
	rank, err := strconv.Atoi(env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad %s=%q\n", workerEnv, env)
		os.Exit(1)
	}
	transformer.WorkerMain(transformer.WorkerConfig{
		Transformer:       transformer.Tiny(seed),
		Rank:              rank,
		World:             ranks,
		Listen:            "127.0.0.1:0",
		RendezvousTimeout: 30 * time.Second,
	})
}

func runCoordinator() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	fmt.Printf("spawning %d cprank worker processes on localhost...\n", ranks)
	type workerProc struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
	}
	workers := make([]*workerProc, ranks)
	addrs := make([]string, ranks)
	for i := 0; i < ranks; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", workerEnv, i))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting worker %d: %w", i, err)
		}
		workers[i] = &workerProc{cmd: cmd, stdin: stdin}
		defer func(w *workerProc) { w.cmd.Process.Kill(); w.cmd.Wait() }(workers[i])
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "CPRANK_ADDR ") {
				addrs[i] = strings.TrimPrefix(sc.Text(), "CPRANK_ADDR ")
				break
			}
		}
		if addrs[i] == "" {
			return fmt.Errorf("worker %d exited before reporting its address", i)
		}
		fmt.Printf("  rank %d: pid %d @ %s\n", i, cmd.Process.Pid, addrs[i])
	}
	list := strings.Join(addrs, ",") + "\n"
	for _, w := range workers {
		if _, err := io.WriteString(w.stdin, list); err != nil {
			return err
		}
	}

	cfg := transformer.Tiny(seed)
	w, err := transformer.NewWeights(cfg)
	if err != nil {
		return err
	}
	dist, err := transformer.ConnectCluster(w, transformer.ConnectConfig{Addrs: addrs, DialTimeout: 30 * time.Second})
	if err != nil {
		return err
	}
	defer dist.Close()
	refW, err := transformer.NewWeights(cfg)
	if err != nil {
		return err
	}
	ref, err := transformer.NewCluster(refW, ranks)
	if err != nil {
		return err
	}
	fmt.Printf("connected: %d-rank distributed cluster (tcp) vs in-process reference (mem)\n\n", ranks)

	m := cfg.Model
	prompt := func(n, stride int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = (i*stride + 5) % m.VocabSize
		}
		return out
	}

	// --- Bit-identity script: every variant, cold and warm, plus decode. ---
	checks := 0
	compare := func(what string, a, b [][]float32) error {
		if len(a) != len(b) {
			return fmt.Errorf("%s: %d vs %d rows", what, len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
					return fmt.Errorf("%s: row %d logit %d differs: %g vs %g", what, i, j, a[i][j], b[i][j])
				}
			}
			checks += len(a[i])
		}
		fmt.Printf("  %-42s bit-identical (%d rows)\n", what, len(a))
		return nil
	}
	both := func(what string, seq int, toks []int, v perf.Variant) error {
		a, err := ref.Prefill(seq, toks, v)
		if err != nil {
			return fmt.Errorf("%s (in-process): %w", what, err)
		}
		b, err := dist.Prefill(seq, toks, v)
		if err != nil {
			return fmt.Errorf("%s (distributed): %w", what, err)
		}
		return compare(what, a, b)
	}

	fmt.Println("cold prefill:")
	// 60 tokens = 2*ranks*10 slots: every rank gets an exactly equal shard,
	// which makes the Table 2 comparison below exact.
	const T = 60
	if err := both("pass-KV prefill (60 tok)", 1, prompt(T, 7), perf.PassKV); err != nil {
		return err
	}
	if err := both("pass-Q prefill (33 tok)", 2, prompt(33, 11), perf.PassQ); err != nil {
		return err
	}
	if err := both("auto prefill (25 tok)", 3, prompt(25, 13), perf.Auto); err != nil {
		return err
	}

	fmt.Println("fused batched decode (3 sessions, 12 steps):")
	toks := []int{3, 17, 29}
	for step := 0; step < 12; step++ {
		a, err := ref.DecodeBatch([]int{1, 2, 3}, toks)
		if err != nil {
			return err
		}
		b, err := dist.DecodeBatch([]int{1, 2, 3}, toks)
		if err != nil {
			return err
		}
		for i := range a {
			for j := range a[i] {
				if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
					return fmt.Errorf("decode step %d seq %d logit %d differs", step, i, j)
				}
			}
			if transformer.Argmax(a[i]) != transformer.Argmax(b[i]) {
				return fmt.Errorf("decode streams diverge at step %d", step)
			}
			toks[i] = transformer.Argmax(a[i])
			checks += len(a[i])
		}
	}
	fmt.Printf("  %-42s bit-identical (36 steps fused)\n", "decode logits + greedy streams")

	fmt.Println("warm prefix-cache prefill (detach -> adopt):")
	donor := prompt(64, 9)
	if err := both("donor chunk [0:32)", 10, donor[:32], perf.PassKV); err != nil {
		return err
	}
	if err := both("donor chunk [32:64)", 10, donor[32:], perf.PassKV); err != nil {
		return err
	}
	refPre, err := ref.DetachPrefix(10, 32)
	if err != nil {
		return err
	}
	distPre, err := dist.DetachPrefix(10, 32)
	if err != nil {
		return err
	}
	ref.Drop(10)
	dist.Drop(10)
	suffix := append(append([]int(nil), donor[32:]...), prompt(16, 3)...)
	aw, err := ref.PrefillFrom(11, refPre, suffix, perf.Auto)
	if err != nil {
		return err
	}
	bw, err := dist.PrefillFrom(11, distPre, suffix, perf.Auto)
	if err != nil {
		return err
	}
	if err := compare("warm prefill from adopted prefix", aw, bw); err != nil {
		return err
	}
	refPre.Release()
	distPre.Release()

	// --- Table 2 communication-cost comparison. ---
	// Reset-free: measure one isolated cold pass-KV prefill on fresh ids.
	telBefore, err := dist.Telemetry()
	if err != nil {
		return err
	}
	if _, err := ref.Prefill(20, prompt(T, 3), perf.PassKV); err != nil {
		return err
	}
	if _, err := dist.Prefill(20, prompt(T, 3), perf.PassKV); err != nil {
		return err
	}
	telAfter, err := dist.Telemetry()
	if err != nil {
		return err
	}
	measured := telAfter.Comm.Bytes[comm.KindSendRecv] - telBefore.Comm.Bytes[comm.KindSendRecv]
	// Table 2 (pass-KV): each ring step moves K and V for the block, i.e.
	// 2 * T * (NKV*DH) * e per layer circulated across N-1 steps, plus the
	// engine's 8 B/token position+sequence metadata.
	kvAnalytic := float64(m.Layers*(ranks-1)) * 2 * float64(T) * float64(m.NumKV*m.HeadDim) * m.ElemBytes
	metaAnalytic := float64(m.Layers*(ranks-1)) * float64(T) * 8
	analytic := kvAnalytic + metaAnalytic
	fmt.Printf("\nTable 2 check — cold pass-KV prefill, T=%d, N=%d, L=%d, e=%gB:\n", T, ranks, m.Layers, m.ElemBytes)
	fmt.Printf("  analytic ring KV bytes  L*(N-1)*2*T*NKV*DH*e = %.0f\n", kvAnalytic)
	fmt.Printf("  + per-token metadata    L*(N-1)*T*8          = %.0f\n", metaAnalytic)
	fmt.Printf("  modeled (accounted) sendrecv bytes           = %.0f\n", measured)
	if measured != analytic {
		return fmt.Errorf("modeled sendrecv bytes %.0f != Table 2 analytic %.0f", measured, analytic)
	}
	fmt.Printf("  exact match: the ring moved precisely the paper's byte count\n")

	var wireBytes, wireMsgs int64
	fmt.Println("\nper-link wire traffic (codec frames; heartbeats+control included):")
	for _, l := range telAfter.Links {
		if l.WireBytes == 0 {
			continue
		}
		src := strconv.Itoa(l.Src)
		if l.Src == -1 {
			src = "C" // coordinator control link
		}
		fmt.Printf("  %s->%d: %6d modeled B, %7d wire B in %d frames\n", src, l.Dst, int64(l.Bytes), l.WireBytes, l.WireMsgs)
		wireBytes += l.WireBytes
		wireMsgs += l.WireMsgs
	}
	fmt.Printf("  total: %d wire bytes across %d frames\n", wireBytes, wireMsgs)

	if err := dist.Close(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	for i, wp := range workers {
		if err := wp.cmd.Wait(); err != nil {
			return fmt.Errorf("worker %d exit: %w", i, err)
		}
	}
	fmt.Printf("\nOK: %d logit values compared bit-for-bit across 3 OS processes; workers shut down cleanly\n", checks)
	return nil
}
