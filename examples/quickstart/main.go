// Quickstart: build a 4-rank context-parallel engine, run a full prefill
// and a few decode steps, and verify the distributed outputs against
// single-device reference attention — the paper's losslessness claim in
// twenty lines of API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/tensor"
)

func main() {
	m := repro.TinyModel() // NH=8, NKV=2 — a GQA shape like Llama's, scaled down
	engine, err := repro.NewEngine(repro.EngineConfig{
		Model:        m,
		Ranks:        4,
		Policy:       repro.Force(repro.PassKV),
		TrackHistory: true, // keep the oracle so we can prove losslessness
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 48-token prompt for one sequence: the caller supplies projected
	// Q/K/V (the engine operates at the attention-layer level).
	rng := rand.New(rand.NewSource(42))
	const T = 48
	req := &repro.PrefillRequest{
		SeqIDs: []int{0},
		Lens:   []int{T},
		Q:      tensor.RandN(rng, T, m.NumHeads, m.HeadDim),
		K:      tensor.RandN(rng, T, m.NumKV, m.HeadDim),
		V:      tensor.RandN(rng, T, m.NumKV, m.HeadDim),
	}
	res, err := engine.Prefill(req)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := engine.Reference(0, req.Q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefill: %d tokens with %v across %d ranks\n", T, res.Variant, engine.Ranks())
	fmt.Printf("max |distributed - reference| = %.3g\n", tensor.MaxAbsDiff(res.Output, ref))

	// Decode five tokens; each step rotates ownership so KV growth stays
	// balanced across ranks.
	for step := 0; step < 5; step++ {
		dreq := &repro.DecodeRequest{
			SeqIDs: []int{0},
			Q:      tensor.RandN(rng, 1, m.NumHeads, m.HeadDim),
			K:      tensor.RandN(rng, 1, m.NumKV, m.HeadDim),
			V:      tensor.RandN(rng, 1, m.NumKV, m.HeadDim),
		}
		prev := engine.SeqLen(0)
		dres, err := engine.Decode(dreq)
		if err != nil {
			log.Fatal(err)
		}
		dref, err := engine.Reference(0, dreq.Q, prev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decode step %d: ctx=%d, max |Δ| = %.3g\n",
			step+1, engine.SeqLen(0), tensor.MaxAbsDiff(dres.Output, dref))
	}
	fmt.Printf("\nper-rank KV tokens after decode: %v (round-robin keeps growth balanced)\n",
		engine.RankCacheTokens())
	fmt.Printf("communication: %.0f bytes over the simulated fabric\n", engine.CommStats().TotalBytes())
}
