// Textgen: end-to-end distributed inference — a complete Llama-architecture
// transformer (embeddings, RMSNorm, RoPE, GQA, SwiGLU, output head) running
// across context-parallel ranks with ring attention on every layer. The
// cluster greedily generates tokens and the run asserts that the generated
// stream is identical to the single-device reference, turn after turn —
// the whole-system form of the paper's losslessness claim.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.TinyTransformer(2024)
	weights, err := repro.NewTransformer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	prompt := []int{12, 47, 3, 61, 30, 8, 25}
	const steps = 8

	// Single-device oracle.
	refTokens, err := weights.GenerateReference(prompt, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d layers, D=%d, NH=%d, NKV=%d, vocab=%d\n",
		cfg.Model.Layers, cfg.Model.ModelDim, cfg.Model.NumHeads, cfg.Model.NumKV, cfg.Model.VocabSize)
	fmt.Printf("prompt: %v\n", prompt)
	fmt.Printf("reference generation: %v\n\n", refTokens)

	for _, ranks := range []int{1, 2, 4} {
		cluster, err := repro.NewTransformerCluster(weights, ranks)
		if err != nil {
			log.Fatal(err)
		}
		got, err := cluster.Generate(0, prompt, steps, repro.PassKV)
		if err != nil {
			log.Fatal(err)
		}
		match := "identical"
		for i := range refTokens {
			if got[i] != refTokens[i] {
				match = fmt.Sprintf("DIVERGED at step %d", i)
				break
			}
		}
		fmt.Printf("CP%-2d generation: %v  (%s; ring bytes %.0f; per-rank KV %v)\n",
			ranks, got, match, cluster.CommStats().TotalBytes(), cluster.RankCacheTokens())
	}

	// Multi-turn: a follow-up prompt attends to everything generated so far
	// through the persistent per-layer KV caches.
	fmt.Println("\nmulti-turn follow-up on CP2:")
	cluster, err := repro.NewTransformerCluster(weights, 2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Generate(0, prompt, steps, repro.PassKV); err != nil {
		log.Fatal(err)
	}
	followUp := []int{5, 19, 42}
	logits, err := cluster.Prefill(0, followUp, repro.PassQ) // high hit rate -> pass-Q
	if err != nil {
		log.Fatal(err)
	}
	next := repro.Argmax(logits[len(logits)-1])

	// Oracle: full history (prompt + generated-1... Generate appends steps
	// tokens but the last one was never fed back; rebuild the exact fed
	// history from the cluster's view).
	history := append(append([]int{}, prompt...), refTokens[:steps-1]...)
	history = append(history, followUp...)
	refLogits, err := weights.Forward(history)
	if err != nil {
		log.Fatal(err)
	}
	refNext := repro.Argmax(refLogits[len(history)-1])
	fmt.Printf("follow-up %v -> next token %d (reference %d)\n", followUp, next, refNext)
	if next != refNext {
		log.Fatal("multi-turn follow-up diverged from reference")
	}
	fmt.Println("multi-turn persistent KV verified end to end.")
}
