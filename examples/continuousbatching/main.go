// Continuousbatching: a load driver for the iteration-level serving engine.
// Many concurrent clients stream generate requests through the full HTTP
// stack at once; the scheduler fuses one token-budget prefill chunk plus
// every active session's decode step into each iteration, so the CP ring
// serves the whole population per sweep instead of idling between requests
// (§3.6 batched decode, §4.3 deployment guidance). Clients split into two
// workload cohorts — interactive "chat" (short prompts) and batchy
// "summarization" (long prompts) — and tag their requests, so the engine's
// per-cohort latency series separate the two populations. The driver then
// verifies every stream against its single-session serial reference and
// prints the batching telemetry plus per-cohort quantiles.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transformer"
)

const (
	ranks     = 2
	seed      = 77
	clients   = 8
	maxTokens = 16
	budget    = 8 // small budget → prompts admit in slices, decodes never starve

	// Two cohorts with distinct prompt shapes: even clients are interactive
	// chat turns, odd clients are long-document summarizations.
	chatPromptLen = 16
	summPromptLen = 40
)

// cohortOf assigns a client its workload cohort.
func cohortOf(id int) string {
	if id%2 == 0 {
		return "chat"
	}
	return "summarization"
}

type genReq struct {
	Session   int    `json:"session"`
	Prompt    []int  `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	Cohort    string `json:"cohort"`
}

type genResp struct {
	Tokens []int     `json:"tokens"`
	TTFTMs float64   `json:"ttft_ms"`
	TTITMs []float64 `json:"ttit_ms"`
}

func main() {
	srv, err := server.New(server.Config{
		Transformer: transformer.Tiny(seed),
		Ranks:       ranks,
		Policy:      server.PrefillFirst,
		Variant:     perf.PassKV,
		TokenBudget: budget,
		Cohorts:     []string{"chat", "summarization"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	prompts := make([][]int, clients)
	for i := range prompts {
		n := chatPromptLen
		if cohortOf(i) == "summarization" {
			n = summPromptLen
		}
		p := make([]int, n)
		for j := range p {
			p[j] = (i*13 + j*7 + 5) % 64
		}
		prompts[i] = p
	}

	fmt.Printf("continuous batching: %d clients (chat %d-tok / summarization %d-tok prompts), %d tokens each, %d CP ranks, budget %d tok/iter\n\n",
		clients, chatPromptLen, summPromptLen, maxTokens, ranks, budget)

	var wg sync.WaitGroup
	results := make([]genResp, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body, _ := json.Marshal(genReq{Session: id, Prompt: prompts[id], MaxTokens: maxTokens, Cohort: cohortOf(id)})
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("session %d: status %d", id, resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[id]); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// Verify every served stream against the serial single-session path.
	w, err := transformer.NewWeights(transformer.Tiny(seed))
	if err != nil {
		log.Fatal(err)
	}
	for i := range prompts {
		c, err := transformer.NewCluster(w, ranks)
		if err != nil {
			log.Fatal(err)
		}
		want, err := c.Generate(i, prompts[i], maxTokens, perf.PassKV)
		if err != nil {
			log.Fatal(err)
		}
		for j := range want {
			if results[i].Tokens[j] != want[j] {
				log.Fatalf("session %d diverged from serial reference: %v != %v", i, results[i].Tokens, want)
			}
		}
	}
	fmt.Printf("all %d streams match their single-session serial references\n\n", clients)

	b := srv.Scheduler().BatchStats()
	totalTokens := clients * maxTokens
	fmt.Println("batching telemetry")
	fmt.Println("------------------")
	fmt.Printf("iterations           %6d\n", b.Iterations)
	fmt.Printf("prefill chunks       %6d  (%d prompt tokens)\n", b.PrefillChunks, b.PrefillTokens)
	fmt.Printf("decode steps         %6d\n", b.DecodeTokens)
	fmt.Printf("mixed iterations     %6d  (chunk + decodes in one sweep)\n", b.MixedIterations)
	fmt.Printf("max decode batch     %6d  sessions in one ring pass\n", b.MaxDecodeBatch)
	fmt.Printf("max occupancy        %6d  sessions served by one iteration\n", b.MaxOccupancy)
	fmt.Printf("mean occupancy       %8.1f\n", b.MeanOccupancy())
	fmt.Printf("mean iteration       %8.2f ms\n", b.MeanIterMs())
	fmt.Printf("wall clock           %8.2f ms for %d generated tokens (%.0f tok/s)\n",
		float64(wall.Microseconds())/1000, totalTokens, float64(totalTokens)/wall.Seconds())

	// The same numbers the /metrics and /v1/stats latency surfaces export:
	// streaming log-bucket histograms recorded inside the scheduler, so the
	// quantiles cover every request in the run without storing raw samples.
	rec := srv.Recorder()
	fmt.Println("\nlatency quantiles (from the engine's streaming histograms)")
	fmt.Println("----------------------------------------------------------")
	for _, h := range []struct {
		label string
		name  string
	}{
		{"ttft", "cp_request_ttft_seconds"},
		{"itl", "cp_request_itl_seconds"},
		{"step", "cp_step_seconds"},
	} {
		s := rec.Hist(h.name)
		fmt.Printf("%-5s n=%-4d p50 %7.2f ms   p90 %7.2f ms   p99 %7.2f ms\n",
			h.label, s.HistCount(),
			s.Quantile(0.50)*1000, s.Quantile(0.90)*1000, s.Quantile(0.99)*1000)
	}

	// The cohort tag splits the same histograms per workload class — the
	// series /metrics exports as cp_cohort_*{cohort="..."}.
	fmt.Println("\nper-cohort quantiles (cp_cohort_* series)")
	fmt.Println("-----------------------------------------")
	for _, cohort := range srv.Scheduler().Cohorts() {
		ttft := rec.Hist("cp_cohort_ttft_seconds", trace.L("cohort", cohort))
		if ttft.HistCount() == 0 {
			continue
		}
		itl := rec.Hist("cp_cohort_itl_seconds", trace.L("cohort", cohort))
		e2e := rec.Hist("cp_cohort_e2e_seconds", trace.L("cohort", cohort))
		fmt.Printf("%-14s n=%-3d ttft p50 %7.2f ms   itl p50 %6.2f ms   e2e p99 %7.2f ms\n",
			cohort, ttft.HistCount(),
			ttft.Quantile(0.50)*1000, itl.Quantile(0.50)*1000, e2e.Quantile(0.99)*1000)
	}
	if b.MaxDecodeBatch < 2 {
		log.Fatal("no cross-session batching observed — scheduler regression?")
	}
	fmt.Println("\nevery iteration fused one prompt chunk with the whole decode population:")
	fmt.Println("the ring never idles while prompts stream in, which is the §4.3 deployment")
	fmt.Println("story for serving heavy traffic on a context-parallel cluster.")
}
