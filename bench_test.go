// Benchmarks that regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each experiment
// benchmark prints its table once — the same rows/series the paper reports —
// and then times the generator. Micro-benchmarks of the functional kernels
// and the simulated cluster follow.
package repro_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro"
	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(id, true); !done {
		tab, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Println(tab)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure (§4 + appendices). ---

func BenchmarkTable2CommCost(b *testing.B)             { benchExperiment(b, "table2") }
func BenchmarkTable3Complexity(b *testing.B)           { benchExperiment(b, "table3") }
func BenchmarkFig6aGTTPrefillScaling(b *testing.B)     { benchExperiment(b, "fig6a") }
func BenchmarkFig6bGTIPrefillScaling(b *testing.B)     { benchExperiment(b, "fig6b") }
func BenchmarkFig7ScalingRatio(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8MillionToken(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkAppendixAMFU(b *testing.B)               { benchExperiment(b, "mfu") }
func BenchmarkTable4PartialPrefill(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkFig9CrossoverRatio(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkTable5TimeBreakdown(b *testing.B)        { benchExperiment(b, "table5") }
func BenchmarkTable6DecodeContextScaling(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7ParallelismScaling(b *testing.B)   { benchExperiment(b, "table7") }
func BenchmarkTable8DecodeBreakdown(b *testing.B)      { benchExperiment(b, "table8") }
func BenchmarkFig10HeuristicFit(b *testing.B)          { benchExperiment(b, "fig10") }

// --- Ablation benches for the design choices DESIGN.md calls out. ---

func BenchmarkAblationSharding(b *testing.B)    { benchExperiment(b, "ablation-sharding") }
func BenchmarkAblationHeuristics(b *testing.B)  { benchExperiment(b, "ablation-heuristics") }
func BenchmarkAblationGB200(b *testing.B)       { benchExperiment(b, "ablation-gb200") }
func BenchmarkAblationDecodeOwner(b *testing.B) { benchExperiment(b, "ablation-decode-owner") }

// --- Functional-layer verification experiments. ---

func BenchmarkLosslessVerification(b *testing.B) { benchExperiment(b, "lossless") }
func BenchmarkCommBytesAccounting(b *testing.B)  { benchExperiment(b, "commbytes") }
func BenchmarkEndToEndTransformer(b *testing.B)  { benchExperiment(b, "e2e") }
func BenchmarkDeploymentPlanning(b *testing.B)   { benchExperiment(b, "plan") }
func BenchmarkRingTimeline(b *testing.B)         { benchExperiment(b, "timeline") }
func BenchmarkAblationJitter(b *testing.B)       { benchExperiment(b, "ablation-jitter") }
func BenchmarkOverlapCrossCheck(b *testing.B)    { benchExperiment(b, "xcheck-overlap") }
func BenchmarkKVQuantization(b *testing.B)       { benchExperiment(b, "quant") }

// --- Micro-benchmarks of the kernels and the simulated cluster. ---

func BenchmarkGQAReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := tensor.RandN(rng, 64, 8, 16)
	k := tensor.RandN(rng, 64, 2, 16)
	v := tensor.RandN(rng, 64, 2, 16)
	m := attention.FullCausal(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attention.GQA(q, k, v, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockedAttention(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	q := tensor.RandN(rng, 64, 8, 16)
	k := tensor.RandN(rng, 64, 2, 16)
	v := tensor.RandN(rng, 64, 2, 16)
	m := attention.FullCausal(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attention.Blocked(q, k, v, m, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeAttention(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q := tensor.RandN(rng, 32, 8, 16)
	k := tensor.RandN(rng, 64, 2, 16)
	v := tensor.RandN(rng, 64, 2, 16)
	m := attention.PartialCausal(32, 32)
	half1, _ := attention.GQA(q, k.SliceTokens(0, 32), v.SliceTokens(0, 32),
		attention.Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[:32], KVSeq: m.KVSeq[:32]})
	half2, _ := attention.GQA(q, k.SliceTokens(32, 64), v.SliceTokens(32, 64),
		attention.Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[32:], KVSeq: m.KVSeq[32:]})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.Merge(half1, half2)
	}
}

func benchRingPrefill(b *testing.B, variant func(*ring.PrefillInput) (*attention.Output, error)) {
	b.Helper()
	const n = 4
	rng := rand.New(rand.NewSource(4))
	lens := []int{48}
	plan, err := sharding.NewBatchShard(lens, n)
	if err != nil {
		b.Fatal(err)
	}
	fq := tensor.RandN(rng, 48, 8, 16)
	fk := tensor.RandN(rng, 48, 2, 16)
	fv := tensor.RandN(rng, 48, 2, 16)
	w := comm.NewWorld(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(r *comm.Rank) error {
			_, err := variant(&ring.PrefillInput{
				Rank: r, Plan: plan, P: []int{0},
				Q: plan.Shard(fq, r.ID), K: plan.Shard(fk, r.ID), V: plan.Shard(fv, r.ID),
				Elem: 2,
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingPassKVPrefillCP4(b *testing.B) { benchRingPrefill(b, ring.PassKVPrefill) }
func BenchmarkRingPassQPrefillCP4(b *testing.B)  { benchRingPrefill(b, ring.PassQPrefill) }
func BenchmarkAllGatherPrefillCP4(b *testing.B)  { benchRingPrefill(b, ring.AllGatherPrefill) }

func BenchmarkEnginePrefillDecode(b *testing.B) {
	m := repro.TinyModel()
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := repro.NewEngine(repro.EngineConfig{Model: m, Ranks: 2})
		if err != nil {
			b.Fatal(err)
		}
		req := &repro.PrefillRequest{
			SeqIDs: []int{0}, Lens: []int{24},
			Q: tensor.RandN(rng, 24, m.NumHeads, m.HeadDim),
			K: tensor.RandN(rng, 24, m.NumKV, m.HeadDim),
			V: tensor.RandN(rng, 24, m.NumKV, m.HeadDim),
		}
		if _, err := e.Prefill(req); err != nil {
			b.Fatal(err)
		}
		dreq := &repro.DecodeRequest{
			SeqIDs: []int{0},
			Q:      tensor.RandN(rng, 1, m.NumHeads, m.HeadDim),
			K:      tensor.RandN(rng, 1, m.NumKV, m.HeadDim),
			V:      tensor.RandN(rng, 1, m.NumKV, m.HeadDim),
		}
		if _, err := e.Decode(dreq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfModelPrefill(b *testing.B) {
	s := repro.System{Model: model.Llama3405B(), Plat: repro.GTT(), CPNodes: 8, TPNodes: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Prefill(128000, 0, repro.PassKV)
	}
}

func BenchmarkLoadBalancedSharding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharding.NewBatchShard([]int{4096, 1024, 2048}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Continuous-batching: serial per-session decode vs one fused ring pass. ---

// benchClusterDecode measures decode throughput for `sessions` concurrent
// sequences on a 4-rank cluster, either as `sessions` independent ring
// sweeps per step (serial) or one fused DecodeBatch sweep (batched). The
// reported tok/s is the batching win the serving engine banks on — measured,
// not asserted.
func benchClusterDecode(b *testing.B, sessions int, batched bool) {
	b.Helper()
	w, err := transformer.NewWeights(transformer.Tiny(31))
	if err != nil {
		b.Fatal(err)
	}
	c, err := transformer.NewCluster(w, 4)
	if err != nil {
		b.Fatal(err)
	}
	prompt := []int{7, 3, 60, 12, 9, 33, 2, 41}
	seqs := make([]int, sessions)
	toks := make([]int, sessions)
	for s := 0; s < sessions; s++ {
		seqs[s] = s
		toks[s] = (s*11 + 5) % w.Cfg.Model.VocabSize
	}
	// Fixed work per timed iteration: re-prefill fresh sequences under a
	// stopped timer, then decode a fixed step count, so serial and
	// batched runs measure identical context lengths regardless of the
	// framework's per-benchmark choice of b.N.
	const steps = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for s := 0; s < sessions; s++ {
			c.Drop(seqs[s])
			if _, err := c.Prefill(seqs[s], prompt, perf.PassKV); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for st := 0; st < steps; st++ {
			if batched {
				if _, err := c.DecodeBatch(seqs, toks); err != nil {
					b.Fatal(err)
				}
			} else {
				for s := 0; s < sessions; s++ {
					if _, err := c.Decode(seqs[s], toks[s]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sessions*steps*b.N)/b.Elapsed().Seconds(), "tok/s")
}

func BenchmarkDecodeSerial1(b *testing.B)   { benchClusterDecode(b, 1, false) }
func BenchmarkDecodeBatched1(b *testing.B)  { benchClusterDecode(b, 1, true) }
func BenchmarkDecodeSerial4(b *testing.B)   { benchClusterDecode(b, 4, false) }
func BenchmarkDecodeBatched4(b *testing.B)  { benchClusterDecode(b, 4, true) }
func BenchmarkDecodeSerial16(b *testing.B)  { benchClusterDecode(b, 16, false) }
func BenchmarkDecodeBatched16(b *testing.B) { benchClusterDecode(b, 16, true) }

// --- Prefix KV reuse: cold vs warm prefill TTFT and variant crossover. ---

// benchPrefixPrefill measures prefill latency for a 320-token prompt when
// hitPct percent of it is served from a detached prefix (block = 32 tokens).
// The warm path adopts the donor's pinned pages and ring-prefills only the
// miss suffix; the acceptance bar is >= 2x TTFT at a 90% hit rate.
func benchPrefixPrefill(b *testing.B, hitPct int, variant perf.Variant) {
	b.Helper()
	const block = 32
	const promptLen = 320
	w, err := transformer.NewWeights(transformer.Tiny(31))
	if err != nil {
		b.Fatal(err)
	}
	c, err := transformer.NewCluster(w, 2)
	if err != nil {
		b.Fatal(err)
	}
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = (i*13 + 7) % w.Cfg.Model.VocabSize
	}
	hit := promptLen * hitPct / 100 / block * block
	var pre *transformer.PrefixKV
	if hit > 0 {
		// Donor: canonical block-aligned prefill, detached once.
		for at := 0; at < promptLen; at += block {
			if _, err := c.Prefill(0, prompt[at:at+block], variant); err != nil {
				b.Fatal(err)
			}
		}
		if pre, err = c.DetachPrefix(0, hit); err != nil {
			b.Fatal(err)
		}
		c.Drop(0)
	}
	seq := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pre != nil {
			if err := c.AdoptPrefix(seq, pre); err != nil {
				b.Fatal(err)
			}
		}
		for at := hit; at < promptLen; at += block {
			if _, err := c.Prefill(seq, prompt[at:at+block], variant); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		c.Drop(seq)
		seq++
		b.StartTimer()
	}
	b.ReportMetric(float64(promptLen-hit), "miss-tok")
}

func BenchmarkPrefillHit0(b *testing.B)  { benchPrefixPrefill(b, 0, perf.PassKV) }
func BenchmarkPrefillHit50(b *testing.B) { benchPrefixPrefill(b, 50, perf.PassKV) }
func BenchmarkPrefillHit90(b *testing.B) { benchPrefixPrefill(b, 90, perf.PassKV) }

// Variant crossover on the warm path: at a high hit rate the miss chunks are
// small against a long cached context, which is pass-Q territory (Eq. 1);
// auto should track the better static variant at each hit rate.
func BenchmarkWarmVariantPassKV(b *testing.B) { benchPrefixPrefill(b, 90, perf.PassKV) }
func BenchmarkWarmVariantPassQ(b *testing.B)  { benchPrefixPrefill(b, 90, perf.PassQ) }
func BenchmarkWarmVariantAuto(b *testing.B)   { benchPrefixPrefill(b, 90, perf.Auto) }
