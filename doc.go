// Package repro is a from-scratch Go reproduction of "Context Parallelism
// for Scalable Million-Token Inference" (Yang et al., MLSys 2025,
// arXiv:2411.01783).
//
// The paper scales long-context LLM inference by sharding the sequence
// dimension across hosts (context parallelism, CP) and adapting ring
// attention for inference: a lossless ring pass-KV variant for full
// prefill, a pass-Q variant for high-cache-hit partial prefill and decode,
// load-balanced causal sharding, a persistent sharded KV cache for
// multi-turn chat, and heuristics that pick the variant from the KV-cache
// miss rate.
//
// This package is the public facade over two coupled layers:
//
//   - A functional layer (Engine) that actually runs every algorithm on a
//     simulated multi-rank cluster — goroutine ranks, channel collectives,
//     exact float32 attention — and whose outputs are verified against
//     single-device reference attention.
//   - A performance layer (System) that reproduces the paper's evaluation
//     numbers through a calibrated analytical model of H100 hosts on RDMA
//     (GTT) and TCP (GTI) fabrics.
//
// The Experiments function regenerates every table and figure of the
// paper's evaluation; the examples/ directory shows the API on realistic
// scenarios; EXPERIMENTS.md records paper-versus-model residuals.
package repro
