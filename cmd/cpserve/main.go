// Command cpserve runs the context-parallel inference server: a tiny
// Llama-architecture transformer distributed across simulated CP ranks
// behind an HTTP/JSON API, driven by an iteration-level continuous-batching
// scheduler (chunked prefill plus cross-session fused ring decode, per the
// paper's §3.6 batched decode and §4.3 deployment guidance).
//
// Usage:
//
//	cpserve -addr :8080 -ranks 4 -policy prefill-first -token-budget 32 -max-batch 64
//	curl -s localhost:8080/v1/generate -d '{"session":1,"prompt":[4,19,22,7],"max_tokens":8}'
//	curl -s localhost:8080/v1/stats
//
// Distributed mode coordinates cprank worker processes over TCP instead of
// simulating ranks in-process (same API, bit-identical outputs):
//
//	cprank -rank 0 -world 3 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	cprank -rank 1 -world 3 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	cprank -rank 2 -world 3 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 &
//	cpserve -distributed -rank-addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; exposed only under -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/ring"
	"repro/internal/server"
	"repro/internal/transformer"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ranks := flag.Int("ranks", 2, "CP ranks")
	seed := flag.Int64("seed", 1, "weight seed")
	policyName := flag.String("policy", "prefill-first", "scheduler policy: fifo, prefill-first")
	variantName := flag.String("variant", "pass-kv", "prefill ring variant: pass-kv, pass-q, auto (Eq. 1 per-chunk miss-rate selection)")
	tokenBudget := flag.Int("token-budget", 32, "max prompt tokens prefilled per scheduler iteration")
	maxBatch := flag.Int("max-batch", 64, "max sessions fused into one decode ring pass")
	maxSessions := flag.Int("max-sessions", 256, "admission cap on resident sessions")
	maxTokens := flag.Int("max-tokens", 4096, "cap on a single generate's max_tokens")
	prefixCache := flag.Int("prefix-cache", server.DefaultPrefixCacheTokens,
		"token budget of the prefix KV-reuse tree (released sessions detach into it); <= 0 disables")
	kvCapacity := flag.Int("kv-capacity", 0, "per-rank per-layer KV cache capacity in tokens (0 = unlimited)")
	recvTimeout := flag.Duration("recv-timeout", 0, "cluster comm receive deadline (0 = default)")
	workers := flag.Int("workers", 0, "attention kernel worker-pool width (0 = GOMAXPROCS; env CP_WORKERS also applies)")
	distributed := flag.Bool("distributed", false, "coordinate cprank worker processes instead of simulating ranks in-process")
	rankAddrs := flag.String("rank-addrs", "", "comma-separated cprank worker addresses, index = rank id (requires -distributed)")
	dialTimeout := flag.Duration("dial-timeout", 15*time.Second, "distributed control-plane rendezvous deadline")
	recover := flag.Bool("recover", false, "rebuild the cluster on a new epoch after a rank failure and replay live sessions bit-identically (instead of faulting them)")
	maxRecoveries := flag.Int("max-recoveries", 3, "lifetime bound on recovery rebuild attempts (requires -recover)")
	heartbeatEvery := flag.Duration("heartbeat-interval", 0, "distributed control-plane heartbeat interval (0 = default; negative disables); must match the workers' -heartbeat-interval")
	heartbeatMisses := flag.Int("heartbeat-misses", 0, "silent heartbeat windows before a worker is declared dead (0 = default; >= 2; negative disables)")
	brownoutSLO := flag.Duration("brownout-slo", 0, "queue-wait p90 SLO arming brownout overload control: past it, new sessions get 429 + Retry-After (0 = off)")
	ringOverlap := flag.Bool("ring-overlap", true, "double-buffer the ring hot path: issue the next step's SendRecv concurrently with attention compute (false = synchronous exchanges, bit-identical output)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; profiling endpoints should not ship publicly)")
	traceOut := flag.String("trace-out", "", "write the span trace at shutdown: Chrome-trace JSON if the path ends in .json, deterministic JSONL otherwise")
	noTrace := flag.Bool("no-trace", false, "disable the observability recorder (no /metrics, /v1/trace, or latency histograms; outputs are bit-identical either way)")
	cohortsFlag := flag.String("cohorts", "", "comma-separated workload cohort labels to pre-register for per-cohort latency series (requests tag themselves via the \"cohort\" JSON field)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	ring.SetOverlap(*ringOverlap)

	var policy server.Policy
	switch *policyName {
	case "fifo":
		policy = server.FIFO
	case "prefill-first":
		policy = server.PrefillFirst
	default:
		fmt.Fprintf(os.Stderr, "cpserve: unknown policy %q\n", *policyName)
		os.Exit(1)
	}
	var variant perf.Variant
	switch *variantName {
	case "pass-kv":
		variant = perf.PassKV
	case "pass-q":
		variant = perf.PassQ
	case "auto":
		variant = perf.Auto
	default:
		fmt.Fprintf(os.Stderr, "cpserve: unknown variant %q\n", *variantName)
		os.Exit(1)
	}
	prefixTokens := *prefixCache
	if prefixTokens <= 0 {
		prefixTokens = -1 // disabled
	}
	if *heartbeatMisses == 1 {
		// A single missed beat flaps on ordinary scheduling jitter; refuse it
		// here with the same rule the control plane enforces.
		fmt.Fprintln(os.Stderr, "cpserve: -heartbeat-misses must be >= 2 (or negative to disable)")
		os.Exit(1)
	}
	if *brownoutSLO < 0 {
		fmt.Fprintln(os.Stderr, "cpserve: -brownout-slo must be >= 0 (0 disables brownout)")
		os.Exit(1)
	}
	var addrs []string
	if *distributed {
		if *rankAddrs == "" {
			fmt.Fprintln(os.Stderr, "cpserve: -distributed requires -rank-addrs")
			os.Exit(1)
		}
		addrs = strings.Split(*rankAddrs, ",")
		// Validate before rendezvous: a malformed or duplicated address, or
		// a list that contradicts an explicit -ranks, must fail with one
		// clear line instead of a hang or a mid-handshake rejection.
		if err := server.ValidateRankAddrs(addrs); err != nil {
			fmt.Fprintf(os.Stderr, "cpserve: %v\n", err)
			os.Exit(1)
		}
		ranksSet := false
		flag.Visit(func(f *flag.Flag) { ranksSet = ranksSet || f.Name == "ranks" })
		if ranksSet && *ranks != len(addrs) {
			fmt.Fprintf(os.Stderr, "cpserve: -ranks %d does not match %d -rank-addrs entries (world size is the address count)\n",
				*ranks, len(addrs))
			os.Exit(1)
		}
	} else if *rankAddrs != "" {
		fmt.Fprintln(os.Stderr, "cpserve: -rank-addrs requires -distributed")
		os.Exit(1)
	}

	srv, err := server.New(server.Config{
		Transformer:       transformer.Tiny(*seed),
		Ranks:             *ranks,
		Policy:            policy,
		Variant:           variant,
		TokenBudget:       *tokenBudget,
		MaxBatch:          *maxBatch,
		MaxSessions:       *maxSessions,
		MaxTokens:         *maxTokens,
		PrefixCacheTokens: prefixTokens,
		KVCapacity:        *kvCapacity,
		RecvTimeout:       *recvTimeout,
		RankAddrs:         addrs,
		DialTimeout:       *dialTimeout,
		Recover:           *recover,
		MaxRecoveries:     *maxRecoveries,
		HeartbeatEvery:    *heartbeatEvery,
		HeartbeatMisses:   *heartbeatMisses,
		BrownoutSLO:       *brownoutSLO,
		NoTrace:           *noTrace,
		Cohorts:           splitCohorts(*cohortsFlag),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if *traceOut != "" && *noTrace {
		fmt.Fprintln(os.Stderr, "cpserve: -trace-out requires tracing (drop -no-trace)")
		os.Exit(1)
	}

	handler := srv.Handler()
	if *pprofOn {
		// The API keeps its own mux; pprof's handlers live on the default
		// mux, grafted in only when asked for.
		m := http.NewServeMux()
		m.Handle("/", handler)
		m.Handle("/debug/pprof/", http.DefaultServeMux)
		handler = m
		log.Printf("cpserve: pprof enabled on %s/debug/pprof/", *addr)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	// Graceful drain on SIGINT/SIGTERM: in-flight decodes finish their step
	// and return truncated successes, the HTTP layer flushes those responses
	// to their clients, and then the workers get an orderly shutdown command
	// (so cprank -rejoin loops exit instead of waiting for an epoch that
	// never comes).
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("cpserve: %v: draining and shutting down", sig)
		// Dump the trace before Close: the distributed workers still hold
		// their staged spans, and the drain needs the control plane up.
		if *traceOut != "" {
			dumpTrace(srv, *traceOut)
		}
		srv.Close()
		// Wait for in-flight handlers to write their (possibly truncated)
		// responses before the process goes away; bounded so a wedged
		// client cannot hold shutdown hostage.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		os.Exit(0)
	}()

	prefixDesc := "off"
	if prefixTokens > 0 {
		prefixDesc = fmt.Sprintf("%d tok", prefixTokens)
	}
	recoverDesc := "off"
	if *recover {
		recoverDesc = fmt.Sprintf("on (<=%d rebuilds)", *maxRecoveries)
	}
	rankDesc := fmt.Sprintf("%d in-process CP ranks", *ranks)
	if *distributed {
		rankDesc = fmt.Sprintf("%d distributed CP ranks (%s)", len(addrs), *rankAddrs)
	}
	log.Printf("cpserve: %s, %s scheduling, %v prefill, budget %d tok/iter, batch<=%d, sessions<=%d, prefix cache %s, recovery %s, %d kernel workers, listening on %s",
		rankDesc, policy, variant, *tokenBudget, *maxBatch, *maxSessions, prefixDesc, recoverDesc, parallel.Workers(), *addr)
	log.Printf(`try: curl -s localhost%s/v1/generate -d '{"session":1,"prompt":[4,19,22,7],"max_tokens":8}'`, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

func splitCohorts(s string) []string {
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

func dumpTrace(srv *server.Server, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("cpserve: trace out: %v", err)
		return
	}
	defer f.Close()
	if err := srv.WriteTrace(f, strings.HasSuffix(path, ".json")); err != nil {
		log.Printf("cpserve: trace out: %v", err)
		return
	}
	log.Printf("cpserve: wrote trace to %s", path)
}
