// Command cpcalc evaluates the paper's analytical formulas for a chosen
// model, platform and CP group size: the pass-KV/pass-Q selection thresholds
// (Equations 1-3 and 5), predicted TTFT/TTIT with full breakdowns, KV-cache
// capacity, and the MFU accounting of Appendix A.
//
// Usage:
//
//	cpcalc -model llama3-405b -platform gtt -nodes 4 -ctx 128000 -cached 0
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
)

func pickModel(name string) (model.Config, error) {
	switch name {
	case "llama3-405b":
		return model.Llama3405B(), nil
	case "llama3-70b":
		return model.Llama370B(), nil
	case "llama3-8b":
		return model.Llama38B(), nil
	case "tiny":
		return model.Tiny(), nil
	default:
		return model.Config{}, fmt.Errorf("unknown model %q (llama3-405b, llama3-70b, llama3-8b, tiny)", name)
	}
}

func main() {
	modelName := flag.String("model", "llama3-405b", "model config")
	platName := flag.String("platform", "gtt", "platform: gtt, gti, gb200-like")
	nodes := flag.Int("nodes", 4, "CP nodes")
	tpNodes := flag.Int("tpnodes", 1, "hosts per TP group (multi-node TP baseline)")
	ctx := flag.Int("ctx", 128000, "new tokens T")
	cached := flag.Int("cached", 0, "previously cached tokens P")
	batch := flag.Int("batch", 1, "decode batch size")
	ttftTarget := flag.Float64("ttft", 0, "TTFT target in seconds for deployment planning (0 = off)")
	ttitTarget := flag.Float64("ttit", 0, "TTIT target in seconds for deployment planning (0 = off)")
	flag.Parse()

	m, err := pickModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpcalc:", err)
		os.Exit(1)
	}
	plat, ok := hw.Platforms()[*platName]
	if !ok {
		fmt.Fprintf(os.Stderr, "cpcalc: unknown platform %q\n", *platName)
		os.Exit(1)
	}
	sys := perf.System{Model: m, Plat: plat, CPNodes: *nodes, TPNodes: *tpNodes}
	if err := sys.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cpcalc:", err)
		os.Exit(1)
	}

	fmt.Printf("system: %s on %s, model %s (NH=%d NKV=%d D=%d layers=%d)\n\n",
		sys.Name(), plat.Name, m.Name, m.NumHeads, m.NumKV, m.ModelDim, m.Layers)

	in := heuristic.NewInputs(m, plat, *nodes)
	fmt.Println("-- variant-selection thresholds --")
	fmt.Printf("Eq 1  miss-rate threshold (2*NKV/NH):        %.4f\n", heuristic.Eq1Threshold(m))
	fmt.Printf("Eq 2  min new tokens for hidden pass-KV:     %.0f\n", heuristic.Eq2MinNewTokens(in))
	fmt.Printf("Eq 3  min total context for hidden pass-Q:   %.0f\n", heuristic.Eq3MinContext(in))
	fmt.Printf("Alg 1 choice at T=%d P=%d:                   %v\n", *ctx, *cached, heuristic.Algorithm1(in, *ctx, *cached))
	fmt.Printf("Alg 5 choice at T=%d P=%d:                   %v\n", *ctx, *cached, heuristic.Algorithm5(in, *ctx, *cached))
	fmt.Printf("paper empirical h(T,P):                      %.3f -> %v\n\n",
		heuristic.PaperEmpirical().Score(*ctx, *cached), heuristic.PaperEmpirical().Choose(*ctx, *cached))

	fmt.Println("-- predicted prefill (TTFT) --")
	for _, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
		b := sys.Prefill(*ctx, *cached, v)
		fmt.Printf("%-8s total %8.3f s  (gemm %.3f, attn %.3f, allreduce %.3f, ring-exposed %.3f, all2all %.3f, base %.3f)\n",
			v, b.Total, b.GEMM, b.Attn, b.AllReduce, b.RingExposed, b.All2All, b.Base)
	}
	best, _, _ := sys.PrefillBest(*ctx, *cached)
	fmt.Printf("oracle winner: %v\n\n", best)

	fmt.Println("-- predicted decode (TTIT) --")
	d := sys.Decode(*ctx+*cached, *batch)
	fmt.Printf("total %.2f ms  (weights %.2f, ar-latency %.2f, attn-loop %.2f, sendrecv %.2f, all2all %.2f ms)\n\n",
		d.Total*1000, d.WeightRead*1000, d.ARLatency*1000, d.AttnLoop*1000, d.SendRecv*1000, d.All2All*1000)

	fmt.Println("-- capacity and utilization --")
	fmt.Printf("KV capacity: %.0f tokens across %d CP nodes\n", sys.KVCapacityTokens(), *nodes)
	perGPU, util := sys.MFU(*ctx, perf.PassKV)
	fmt.Printf("full-prefill MFU at T=%d: %.0f TF/s per GPU (%.1f%% of BF16 peak)\n",
		*ctx, perGPU/1e12, util*100)
	fmt.Printf("speed-of-light TTFT bound: %.3f s (plan runs at %.2fx of bound)\n\n",
		sys.SpeedOfLight(*ctx), sys.Efficiency(*ctx))

	if *ttftTarget > 0 || *ttitTarget > 0 {
		fmt.Println("-- deployment plan --")
		plan, err := perf.PlanDeployment(perf.PlanRequest{
			Model: m, Plat: plat, Context: *ctx + *cached,
			TTFTTarget: *ttftTarget, TTITTarget: *ttitTarget, DecodeBatch: *batch,
		})
		if err != nil {
			fmt.Printf("no feasible plan: %v\n", err)
			return
		}
		fmt.Printf("smallest group meeting constraints: %s (%d GPUs)\n",
			plan.System.Name(), plan.System.TotalGPUs())
		fmt.Printf("TTFT %.2f s (target %.2f, met=%v)  TTIT %.2f ms (target %.2f ms, met=%v)\n",
			plan.TTFT, *ttftTarget, plan.MeetsTTFT, plan.TTIT*1000, *ttitTarget*1000, plan.MeetsTTIT)
		if !plan.MeetsTTIT {
			fmt.Println("note: decode regresses as CP grows (§4.3); consider disaggregated prefill/decode")
		}
	}
}
