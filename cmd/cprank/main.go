// Command cprank hosts one context-parallel rank as its own OS process: it
// joins the TCP mesh of its peer ranks, accepts the coordinator's control
// connection (cpserve -distributed, or any transformer.ConnectCluster
// client), and executes its shard of every prefill and decode ring pass
// against its local per-layer KV caches. Weights are replicated from the
// same deterministic seed as the coordinator's; the rendezvous handshake
// digests model config, seed, world size, and KV capacity, so a mismatched
// worker is rejected at startup instead of producing skewed logits.
//
// Usage (fixed ports):
//
//	cprank -rank 0 -world 3 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//	cprank -rank 1 -world 3 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//	cprank -rank 2 -world 3 -addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//	cpserve -distributed -rank-addrs 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// With no -addrs, the worker binds -listen (default 127.0.0.1:0), prints
// "CPRANK_ADDR <host:port>" on stdout, and waits for the full
// comma-separated rank address list on one stdin line — the rendezvous a
// parent process uses to wire up ephemeral ports without races (see
// examples/distributed).
//
// The process exits when the coordinator sends a shutdown command or hangs
// up, or with status 1 on a transport/engine fault.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/parallel"
	"repro/internal/transformer"
)

func main() {
	rank := flag.Int("rank", -1, "this worker's CP rank, in [0, world)")
	world := flag.Int("world", 0, "total CP rank count")
	listen := flag.String("listen", "127.0.0.1:0", "listen address (used when -addrs is empty)")
	addrs := flag.String("addrs", "", "comma-separated addresses of every rank, index = rank id; empty = stdin/stdout rendezvous")
	seed := flag.Int64("seed", 1, "weight seed (must match the coordinator)")
	kvCapacity := flag.Int("kv-capacity", 0, "per-rank per-layer KV cache capacity in tokens (must match the coordinator; 0 = unlimited)")
	recvTimeout := flag.Duration("recv-timeout", 0, "ring receive deadline (0 = default)")
	rendezvous := flag.Duration("rendezvous-timeout", 15*time.Second, "mesh-formation deadline")
	workers := flag.Int("workers", 0, "attention kernel worker-pool width (0 = GOMAXPROCS; env CP_WORKERS also applies)")
	rejoin := flag.Bool("rejoin", false, "survive cluster rebuilds: when the coordinator hangs up (epoch rebuild after a rank failure), discard state and rejoin the mesh at the next epoch instead of exiting")
	epoch := flag.Uint64("epoch", 1, "cluster epoch to join first; a respawned replacement rank can leave the default and adopt the mesh's current epoch at handshake")
	maxRejoins := flag.Int("max-rejoins", 16, "bound on rejoin cycles (requires -rejoin)")
	traceSpans := flag.Int("trace-spans", 0, "cap on trace spans staged between coordinator drains (0 = default; overflow is dropped and counted)")
	heartbeatEvery := flag.Duration("heartbeat-interval", 0, "control-plane heartbeat interval to the coordinator (0 = default; negative disables); must match cpserve -heartbeat-interval")
	heartbeatMisses := flag.Int("heartbeat-misses", 0, "silent peer heartbeat windows before a mesh link is declared dead (0 = default; >= 2; negative disables)")
	chaosSpec := flag.String("chaos", "", `deterministic fault schedule this rank executes, e.g. "slow@0->1#8:2ms*16;corrupt@1->2#32;partition@0|1,2#64;crash@1#96" (see internal/chaos)`)
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *world <= 0 || *rank < 0 || *rank >= *world {
		fmt.Fprintf(os.Stderr, "cprank: need -rank in [0, world) and -world > 0 (got rank %d, world %d)\n", *rank, *world)
		os.Exit(1)
	}
	if *heartbeatMisses == 1 {
		fmt.Fprintln(os.Stderr, "cprank: -heartbeat-misses must be >= 2 (or negative to disable)")
		os.Exit(1)
	}
	cfg := transformer.WorkerConfig{
		Transformer:       transformer.Tiny(*seed),
		Rank:              *rank,
		World:             *world,
		Listen:            *listen,
		KVCapacity:        *kvCapacity,
		RecvTimeout:       *recvTimeout,
		RendezvousTimeout: *rendezvous,
		Epoch:             *epoch,
		Rejoin:            *rejoin,
		MaxRejoins:        *maxRejoins,
		MaxTraceSpans:     *traceSpans,
		HeartbeatEvery:    *heartbeatEvery,
		HeartbeatMisses:   *heartbeatMisses,
	}
	if *chaosSpec != "" {
		sched, err := chaos.Parse(*chaosSpec, *world)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cprank: -chaos: %v\n", err)
			os.Exit(1)
		}
		// One injector for the process lifetime: its logical step clocks
		// persist across -rejoin epochs, so a fault scheduled past a rebuild
		// still fires at its exact step.
		inj := chaos.NewInjector(sched)
		cfg.WrapTransport = inj.Wrap
		log.Printf("cprank: rank %d chaos schedule armed: %s", *rank, sched)
	}
	if *addrs != "" {
		cfg.Addrs = strings.Split(*addrs, ",")
		if len(cfg.Addrs) != *world {
			fmt.Fprintf(os.Stderr, "cprank: %d addresses for world size %d\n", len(cfg.Addrs), *world)
			os.Exit(1)
		}
		cfg.Listen = cfg.Addrs[*rank]
	}
	log.Printf("cprank: rank %d/%d joining mesh (seed %d, kv-capacity %d, %d kernel workers)",
		*rank, *world, *seed, *kvCapacity, parallel.Workers())
	transformer.WorkerMain(cfg)
	log.Printf("cprank: rank %d/%d shut down", *rank, *world)
}
