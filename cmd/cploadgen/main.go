// Command cploadgen generates cohort workload traces (tracev2) and replays
// them against a live cpserve, producing the BENCH_serving.json end-to-end
// serving SLO report.
//
// Generate a deterministic trace (same seed + spec -> byte-identical file):
//
//	cploadgen -gen -seed 1 -rps 200 -duration 2s -out trace.jsonl
//
// Replay it against a server and write the benchmark report:
//
//	cploadgen -replay -trace trace.jsonl -base http://localhost:8080 -bench-out BENCH_serving.json
//
// With no -base, the replay spins up an in-process server (flags -ranks,
// -model-seed, -token-budget, -max-batch configure it) — the self-contained
// form CI uses. -speed compresses the trace's timeline (10 = 10x faster)
// without changing the request set.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/server"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cploadgen: ")
	var (
		gen    = flag.Bool("gen", false, "generate a tracev2 file from a seeded cohort spec")
		replay = flag.Bool("replay", false, "replay a tracev2 file against a server and emit BENCH_serving.json")

		// Generate flags.
		out         = flag.String("out", "trace.jsonl", "trace output path (-gen)")
		seed        = flag.Int64("seed", 1, "trace generator seed (-gen)")
		rps         = flag.Float64("rps", 100, "session arrival rate (-gen; pattern base rate)")
		duration    = flag.Duration("duration", 2*time.Second, "trace duration (-gen)")
		maxSessions = flag.Int("max-sessions", 0, "cap generated sessions, 0 = uncapped (-gen)")
		vocab       = flag.Int("vocab", 64, "token vocabulary bound; must match the serving model (-gen)")
		pattern     = flag.String("pattern", "steady", "arrival pattern: steady, diurnal, bursty (-gen)")
		peak        = flag.Float64("peak-rps", 0, "peak rate for diurnal/bursty patterns (0 = 4x -rps)")

		// Replay flags.
		tracePath = flag.String("trace", "trace.jsonl", "trace input path (-replay)")
		base      = flag.String("base", "", "server base URL; empty starts an in-process server (-replay)")
		benchOut  = flag.String("bench-out", "BENCH_serving.json", "serving report output path (-replay)")
		speed     = flag.Float64("speed", 1, "timeline compression factor: 10 replays a 10s trace in 1s (-replay)")
		reqTO     = flag.Int("request-timeout-ms", 0, "per-request timeout_ms forwarded to the server, 0 = none (-replay)")

		// In-process server flags (replay with no -base).
		ranks       = flag.Int("ranks", 2, "in-process server CP ranks")
		modelSeed   = flag.Int64("model-seed", 1, "in-process server weight seed")
		tokenBudget = flag.Int("token-budget", 32, "in-process server prefill token budget per iteration")
		maxBatch    = flag.Int("max-batch", 64, "in-process server decode batch cap")
	)
	flag.Parse()

	switch {
	case *gen == *replay:
		log.Fatal("exactly one of -gen or -replay required")
	case *gen:
		if err := runGen(*out, *seed, *vocab, *rps, *peak, *pattern, *duration, *maxSessions); err != nil {
			log.Fatal(err)
		}
	case *replay:
		if *speed <= 0 {
			log.Fatal("-speed must be > 0")
		}
		if err := runReplay(*tracePath, *base, *benchOut, *speed, *reqTO,
			*ranks, *modelSeed, *tokenBudget, *maxBatch); err != nil {
			log.Fatal(err)
		}
	}
}

func runGen(out string, seed int64, vocab int, rps, peak float64, pattern string, dur time.Duration, maxSessions int) error {
	spec := workload.DefaultTraceSpec(seed, vocab, rps, dur.Microseconds())
	if peak <= 0 {
		peak = 4 * rps
	}
	switch pattern {
	case "steady":
	case "diurnal":
		spec.Arrivals = workload.Diurnal(rps, peak, dur.Microseconds())
	case "bursty":
		spec.Arrivals = workload.Bursty(rps, peak, dur.Microseconds(),
			dur.Microseconds()/4, dur.Microseconds()/16)
	default:
		return fmt.Errorf("unknown -pattern %q (steady, diurnal, bursty)", pattern)
	}
	spec.MaxSessions = maxSessions
	tr, err := workload.GenerateTrace(spec)
	if err != nil {
		return err
	}
	if err := workload.WriteTraceFile(out, tr); err != nil {
		return err
	}
	log.Printf("wrote %s: %d requests, %d sessions, cohorts %v",
		out, tr.Requests(), tr.Sessions(), tr.CohortCounts())
	return nil
}

// generateResponse mirrors the server's /v1/generate reply; the server
// measures TTFT and per-token gaps itself, the driver measures end-to-end.
type generateResponse struct {
	Tokens []int     `json:"tokens"`
	TTFTMs float64   `json:"ttft_ms"`
	TTITMs []float64 `json:"ttit_ms"`
}

func runReplay(tracePath, base, benchOut string, speed float64, reqTO, ranks int, modelSeed int64, tokenBudget, maxBatch int) error {
	tr, err := workload.ReadTraceFile(tracePath)
	if err != nil {
		return err
	}
	if err := workload.ValidateTrace(tr); err != nil {
		return err
	}

	if base == "" {
		srv, err := server.New(server.Config{
			Transformer: transformer.Tiny(modelSeed),
			Ranks:       ranks,
			Variant:     perf.PassKV,
			TokenBudget: tokenBudget,
			MaxBatch:    maxBatch,
			Cohorts:     tr.Spec.CohortNames(),
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		log.Printf("in-process server: %d ranks, budget %d tok/iter, batch<=%d",
			ranks, tokenBudget, maxBatch)
	}

	// One goroutine per session: turn 0 fires at its (speed-scaled) arrival
	// offset, later turns chain closed-loop — think-time gap after the
	// previous turn finishes — while sessions stay open-loop to each other.
	bySession := map[int][]workload.TraceEvent{}
	var sessions []int
	for _, ev := range tr.Events {
		if len(bySession[ev.Session]) == 0 {
			sessions = append(sessions, ev.Session)
		}
		bySession[ev.Session] = append(bySession[ev.Session], ev)
	}

	client := &http.Client{}
	results := make([]workload.RequestResult, len(tr.Events)) // dense ids: index == ev.ID
	start := time.Now()
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess int, evs []workload.TraceEvent) {
			defer wg.Done()
			for _, ev := range evs {
				if ev.Turn == 0 {
					at := time.Duration(float64(ev.AtUs)/speed) * time.Microsecond
					time.Sleep(time.Until(start.Add(at)))
				} else if ev.GapUs > 0 {
					time.Sleep(time.Duration(float64(ev.GapUs)/speed) * time.Microsecond)
				}
				results[ev.ID] = issue(client, base, ev, reqTO)
			}
			release(client, base, sess)
		}(sess, bySession[sess])
	}
	wg.Wait()
	durMs := float64(time.Since(start).Microseconds()) / 1e3

	rep := workload.BuildServingReport(tr, results, durMs, time.Now().Unix())
	if err := workload.ValidateServingReport(rep); err != nil {
		return fmt.Errorf("built report fails its own validation: %w", err)
	}
	if err := workload.WriteServingReport(benchOut, rep); err != nil {
		return err
	}
	log.Printf("wrote %s: %d requests (%d completed, %d shed, %d timeout, %d error) in %.0f ms, %.1f req/s, %.1f tok/s",
		benchOut, rep.Totals.Requests, rep.Totals.Completed, rep.Totals.Shed, rep.Totals.Timeouts,
		rep.Totals.Errors, rep.DurationMs, rep.Throughput.RequestsPerSec, rep.Throughput.OutputTokPerSec)
	for _, c := range rep.Cohorts {
		log.Printf("  %-14s %4d req  ttft p50/p99 %.1f/%.1f ms  itl p50 %.2f ms  e2e p99 %.1f ms  slo met=%v",
			c.Cohort, c.Requests, c.TTFT.P50Ms, c.TTFT.P99Ms, c.ITL.P50Ms, c.E2E.P99Ms, c.SLO.Met)
	}
	return nil
}

// issue replays one trace event as a /v1/generate call, tagging it with its
// cohort and trace id, and returns the measured outcome.
func issue(client *http.Client, base string, ev workload.TraceEvent, reqTO int) workload.RequestResult {
	res := workload.RequestResult{ID: ev.ID, Cohort: ev.Cohort}
	body, _ := json.Marshal(map[string]any{
		"session":    ev.Session,
		"prompt":     ev.Prompt,
		"max_tokens": ev.MaxTokens,
		"cohort":     ev.Cohort,
		"timeout_ms": reqTO,
	})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		res.E2EMs = float64(time.Since(t0).Microseconds()) / 1e3
		return res // Status 0 counts as an error in the report
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	res.E2EMs = float64(time.Since(t0).Microseconds()) / 1e3
	res.Status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var gr generateResponse
		if json.Unmarshal(b, &gr) == nil {
			res.TTFTMs = gr.TTFTMs
			res.ITLMs = gr.TTITMs
			res.OutputTokens = len(gr.Tokens)
		}
	}
	return res
}

// release frees the replayed session server-side so resident sessions do not
// accumulate across the run; failures are harmless (the session may already
// be gone, or the server may have shed every turn).
func release(client *http.Client, base string, sess int) {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/session/%d", base, sess), nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
