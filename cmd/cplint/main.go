// Command cplint runs the repo's invariant analyzer suite (internal/lint)
// over every package in the module: determinism (no wall clocks or global
// randomness in deterministic paths), map-order (no map-iteration order
// reaching encoders, hashes, float accumulators, or unsorted slices),
// wire-exhaustive (switches over iota kind enums cover every constant or
// default loudly), lock-send (no mutex held across a channel send or conn
// write), and metric-reg (every cp_* series pre-registered).
//
// Usage:
//
//	cplint ./...          # lint the module containing the working directory
//	cplint -json ./...    # machine-readable findings (internal/report shape)
//	cplint -C path ./...  # lint the module rooted at path
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. A finding can be
// suppressed in place with `//cplint:allow <rule>[,<rule>] <reason>` on the
// offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/report"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as one JSON report on stdout")
	chdir := flag.String("C", "", "module root to lint (default: the module containing the working directory)")
	flag.Parse()

	// The only accepted package pattern is the whole module; "./..." is
	// allowed for familiarity.
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "cplint: only ./... is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}

	root := *chdir
	if root == "" {
		var err error
		if root, err = findModuleRoot(); err != nil {
			fmt.Fprintf(os.Stderr, "cplint: %v\n", err)
			os.Exit(2)
		}
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cplint: %v\n", err)
		os.Exit(2)
	}

	rep := report.New("cplint")
	rep.Findings = m.Run(lint.DefaultPolicy())
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cplint: %v\n", err)
			os.Exit(2)
		}
	} else if err := rep.WriteText(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cplint: %v\n", err)
		os.Exit(2)
	}
	if !rep.Empty() {
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("cplint: ok — %d packages clean\n", len(m.Pkgs))
	}
}

// findModuleRoot ascends from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
