// Command obscheck validates a live server's observability endpoints with
// the in-tree parsers — the CI smoke's teeth. It scrapes the Prometheus
// text exposition (/metrics), the Chrome-trace export (/v1/trace), and the
// JSONL export (/v1/trace?format=jsonl), and fails if any endpoint is
// unreachable, malformed, or missing a required metric series.
//
// Usage:
//
//	obscheck -base http://127.0.0.1:8080 \
//	  -want cp_ring_phase_seconds,cp_requests_total,cp_cluster_epoch
//
// With -prom-file it validates a dumped exposition file instead (e.g. the
// cpchaos -metrics-out artifact) — same parse and -want checks, no server:
//
//	obscheck -prom-file soak.prom -want cp_integrity_rejected_total
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/trace"
)

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "server base URL")
	want := flag.String("want", "", "comma-separated metric names that must appear in /metrics")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	promFile := flag.String("prom-file", "", "validate this dumped Prometheus exposition file instead of a live server (skips the trace endpoints)")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
		os.Exit(1)
	}

	// /metrics (or the dumped file) must parse as Prometheus text
	// exposition, with well-formed histogram families and every required
	// series present.
	var body []byte
	var err error
	src := *base + "/metrics"
	if *promFile != "" {
		src = *promFile
		body, err = os.ReadFile(*promFile)
	} else {
		body, err = fetch(client, src)
	}
	if err != nil {
		fail("%v", err)
	}
	samples, err := trace.ParseProm(bytes.NewReader(body))
	if err != nil {
		fail("%s: %v", src, err)
	}
	have := make(map[string]bool, len(samples))
	for _, s := range samples {
		have[s.Name] = true
		have[strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.Name, "_bucket"), "_sum"), "_count")] = true
	}
	var missing []string
	for _, name := range strings.Split(*want, ",") {
		if name = strings.TrimSpace(name); name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("%s: missing required series %v (have %d samples)", src, missing, len(samples))
	}
	if *promFile != "" {
		fmt.Printf("obscheck: ok — %d prom samples from %s\n", len(samples), *promFile)
		return
	}

	// /v1/trace must be valid Chrome trace JSON.
	body, err = fetch(client, *base+"/v1/trace")
	if err != nil {
		fail("%v", err)
	}
	if err := trace.ValidateChromeTrace(body); err != nil {
		fail("/v1/trace: %v", err)
	}

	// The JSONL export must be one valid JSON object per line.
	body, err = fetch(client, *base+"/v1/trace?format=jsonl")
	if err != nil {
		fail("%v", err)
	}
	lines := 0
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var span map[string]any
		if err := json.Unmarshal(line, &span); err != nil {
			fail("/v1/trace?format=jsonl line %d: %v", lines+1, err)
		}
		lines++
	}

	fmt.Printf("obscheck: ok — %d prom samples, chrome trace valid, %d jsonl spans\n", len(samples), lines)
}
