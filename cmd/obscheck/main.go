// Command obscheck validates a live server's observability endpoints with
// the in-tree parsers — the CI smoke's teeth. It scrapes the Prometheus
// text exposition (/metrics), the Chrome-trace export (/v1/trace), and the
// JSONL export (/v1/trace?format=jsonl), and fails if any endpoint is
// unreachable, malformed, or missing a required metric series.
//
// Usage:
//
//	obscheck -base http://127.0.0.1:8080 \
//	  -want cp_ring_phase_seconds,cp_requests_total,cp_cluster_epoch
//
// With -prom-file it validates a dumped exposition file instead (e.g. the
// cpchaos -metrics-out artifact) — same parse and -want checks, no server:
//
//	obscheck -prom-file soak.prom -want cp_integrity_rejected_total
//
// With -serving-json it validates a cploadgen BENCH_serving.json against the
// cp-serving-bench/v1 schema (outcome accounting, sorted cohorts, quantile
// ordering, attainment bounds). Standalone it checks only the file; combined
// with -base/-prom-file the exposition checks run too, and -want-cohorts
// requires per-cohort cp_cohort_* series for each named label value:
//
//	obscheck -serving-json BENCH_serving.json
//	obscheck -base http://127.0.0.1:8080 -want-cohorts chat,rag -serving-json BENCH_serving.json
//
// With -json the result is emitted as one JSON report on stdout in the
// internal/report shape shared with cplint — an empty findings array on
// success, one finding (rule + message) on failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "server base URL")
	want := flag.String("want", "", "comma-separated metric names that must appear in /metrics")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	promFile := flag.String("prom-file", "", "validate this dumped Prometheus exposition file instead of a live server (skips the trace endpoints)")
	servingJSON := flag.String("serving-json", "", "validate this BENCH_serving.json against the cp-serving-bench/v1 schema")
	wantCohorts := flag.String("want-cohorts", "", "comma-separated cohort labels that must each have cp_cohort_ttft/itl/e2e series in /metrics")
	jsonOut := flag.Bool("json", false, "emit the result as one JSON report (internal/report shape) on stdout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	// Checks here are sequential and fatal — each later endpoint check
	// depends on the earlier ones — so a failure report carries exactly one
	// finding, in the same shape cplint -json emits.
	fail := func(rule, format string, args ...any) {
		if *jsonOut {
			rep := report.New("obscheck")
			rep.Addf(rule, format, args...)
			rep.WriteJSON(os.Stdout)
		} else {
			fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
		}
		os.Exit(1)
	}
	okf := func(format string, args ...any) {
		if *jsonOut {
			report.New("obscheck").WriteJSON(os.Stdout)
			return
		}
		fmt.Printf("obscheck: ok — "+format+"\n", args...)
	}

	if *servingJSON != "" {
		rep, err := workload.ReadServingReport(*servingJSON)
		if err != nil {
			fail("serving-json", "%v", err)
		}
		if err := workload.ValidateServingReport(rep); err != nil {
			fail("serving-json", "%s: %v", *servingJSON, err)
		}
		// Standalone file check: stop before the live checks unless the
		// caller also pointed at an exposition source.
		baseSet := false
		flag.Visit(func(f *flag.Flag) { baseSet = baseSet || f.Name == "base" })
		if !baseSet && *promFile == "" && *want == "" && *wantCohorts == "" {
			okf("%s valid (%d requests, %d cohorts)",
				*servingJSON, rep.Totals.Requests, len(rep.Cohorts))
			return
		}
		if !*jsonOut {
			fmt.Printf("obscheck: ok — %s valid (%d requests, %d cohorts)\n",
				*servingJSON, rep.Totals.Requests, len(rep.Cohorts))
		}
	}

	// /metrics (or the dumped file) must parse as Prometheus text
	// exposition, with well-formed histogram families and every required
	// series present.
	var body []byte
	var err error
	src := *base + "/metrics"
	if *promFile != "" {
		src = *promFile
		body, err = os.ReadFile(*promFile)
	} else {
		body, err = fetch(client, src)
	}
	if err != nil {
		fail("fetch", "%v", err)
	}
	samples, err := trace.ParseProm(bytes.NewReader(body))
	if err != nil {
		fail("prom-parse", "%s: %v", src, err)
	}
	have := make(map[string]bool, len(samples))
	for _, s := range samples {
		have[s.Name] = true
		have[strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.Name, "_bucket"), "_sum"), "_count")] = true
	}
	var missing []string
	for _, name := range strings.Split(*want, ",") {
		if name = strings.TrimSpace(name); name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("missing-series", "%s: missing required series %v (have %d samples)", src, missing, len(samples))
	}
	if *wantCohorts != "" {
		// Each named cohort must have every per-cohort latency family — the
		// labeled analogue of -want.
		haveCohort := map[string]bool{}
		for _, s := range samples {
			if c := s.Labels["cohort"]; c != "" && strings.HasPrefix(s.Name, "cp_cohort_") {
				base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.Name, "_bucket"), "_sum"), "_count")
				haveCohort[base+"/"+c] = true
			}
		}
		var missingCohort []string
		for _, c := range strings.Split(*wantCohorts, ",") {
			if c = strings.TrimSpace(c); c == "" {
				continue
			}
			for _, fam := range []string{"cp_cohort_ttft_seconds", "cp_cohort_itl_seconds", "cp_cohort_e2e_seconds", "cp_cohort_requests_total"} {
				if !haveCohort[fam+"/"+c] {
					missingCohort = append(missingCohort, fam+`{cohort="`+c+`"}`)
				}
			}
		}
		if len(missingCohort) > 0 {
			fail("missing-series", "%s: missing per-cohort series %v", src, missingCohort)
		}
	}
	if *promFile != "" {
		okf("%d prom samples from %s", len(samples), *promFile)
		return
	}

	// /v1/trace must be valid Chrome trace JSON.
	body, err = fetch(client, *base+"/v1/trace")
	if err != nil {
		fail("fetch", "%v", err)
	}
	if err := trace.ValidateChromeTrace(body); err != nil {
		fail("trace-chrome", "/v1/trace: %v", err)
	}

	// The JSONL export must be one valid JSON object per line.
	body, err = fetch(client, *base+"/v1/trace?format=jsonl")
	if err != nil {
		fail("fetch", "%v", err)
	}
	lines := 0
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var span map[string]any
		if err := json.Unmarshal(line, &span); err != nil {
			fail("trace-jsonl", "/v1/trace?format=jsonl line %d: %v", lines+1, err)
		}
		lines++
	}

	okf("%d prom samples, chrome trace valid, %d jsonl spans", len(samples), lines)
}
