// Command cpsim runs the functional context-parallel cluster on a synthetic
// multi-turn conversation and verifies every output against single-device
// reference attention — the executable form of the paper's "lossless exact"
// claim. It prints the variant chosen per turn, the verification residual,
// communication bytes, and the per-rank KV balance.
//
// Usage:
//
//	cpsim -ranks 4 -seqs 2 -turns 3 -decode 4 -policy alg1
//
// With -tracev2 it instead replays a cploadgen trace through the
// discrete-event serving simulator (virtual time, no cluster) and emits the
// same cp-serving-bench/v1 report the live replay produces:
//
//	cpsim -tracev2 trace.jsonl -sim-out BENCH_serving_sim.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// simReplay runs the tracev2 serving simulation and prints (and optionally
// writes) its cp-serving-bench/v1 report.
func simReplay(tracePath, simOut string, budget, batch int) error {
	tr, err := workload.ReadTraceFile(tracePath)
	if err != nil {
		return err
	}
	m := eventsim.DefaultServeModel()
	if budget > 0 {
		m.TokenBudget = budget
	}
	if batch > 0 {
		m.MaxBatch = batch
	}
	res, err := eventsim.SimulateServe(tr, m)
	if err != nil {
		return err
	}
	rep := workload.BuildServingReport(tr, res.Results, res.DurationMs, time.Now().Unix())
	if err := workload.ValidateServingReport(rep); err != nil {
		return fmt.Errorf("simulated report invalid: %w", err)
	}
	fmt.Printf("cpsim: simulated %d requests (%d sessions) in %.1f virtual ms over %d steps\n",
		rep.Totals.Requests, rep.Trace.Sessions, rep.DurationMs, res.Steps)
	for _, c := range rep.Cohorts {
		fmt.Printf("  %-14s %4d req  ttft p50/p99 %.2f/%.2f ms  itl p50 %.3f ms  slo met=%v\n",
			c.Cohort, c.Requests, c.TTFT.P50Ms, c.TTFT.P99Ms, c.ITL.P50Ms, c.SLO.Met)
	}
	if simOut != "" {
		if err := workload.WriteServingReport(simOut, rep); err != nil {
			return err
		}
		fmt.Printf("wrote simulated serving report to %s\n", simOut)
	}
	return nil
}

func pickPolicy(name string, ranks int) (core.Policy, error) {
	switch name {
	case "pass-kv":
		return core.Force(perf.PassKV), nil
	case "pass-q":
		return core.Force(perf.PassQ), nil
	case "alg1", "alg5":
		// Scale tiny functional token counts up to realistic magnitudes so
		// the Llama3-405B/GTT thresholds are meaningful.
		in := heuristic.NewInputs(model.Llama3405B(), hw.GTT(), ranks)
		const scale = 1000
		if name == "alg1" {
			return core.PolicyFunc("alg1", func(T, P int) perf.Variant {
				return heuristic.Algorithm1(in, T*scale, P*scale)
			}), nil
		}
		return core.PolicyFunc("alg5", func(T, P int) perf.Variant {
			return heuristic.Algorithm5(in, T*scale, P*scale)
		}), nil
	default:
		return nil, fmt.Errorf("unknown policy %q (pass-kv, pass-q, alg1, alg5)", name)
	}
}

func main() {
	ranks := flag.Int("ranks", 4, "CP ranks")
	seqs := flag.Int("seqs", 2, "sequences in the batch")
	turns := flag.Int("turns", 3, "prefill turns")
	decode := flag.Int("decode", 4, "decode steps per turn")
	policyName := flag.String("policy", "alg1", "variant policy: pass-kv, pass-q, alg1, alg5")
	seed := flag.Int64("seed", 1, "workload seed")
	traceOut := flag.String("trace-out", "", "write the run's span trace: Chrome-trace JSON if the path ends in .json, deterministic JSONL otherwise")
	tracev2 := flag.String("tracev2", "", "replay this cploadgen tracev2 file through the discrete-event serving simulator instead of the functional run")
	simOut := flag.String("sim-out", "", "write the simulated cp-serving-bench/v1 report here (requires -tracev2)")
	simBudget := flag.Int("sim-token-budget", 0, "simulator prefill token budget per step (0 = model default)")
	simBatch := flag.Int("sim-max-batch", 0, "simulator decode batch cap (0 = model default)")
	flag.Parse()

	if *simOut != "" && *tracev2 == "" {
		fmt.Fprintln(os.Stderr, "cpsim: -sim-out requires -tracev2")
		os.Exit(1)
	}
	if *tracev2 != "" {
		if err := simReplay(*tracev2, *simOut, *simBudget, *simBatch); err != nil {
			fmt.Fprintln(os.Stderr, "cpsim:", err)
			os.Exit(1)
		}
		return
	}

	policy, err := pickPolicy(*policyName, *ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpsim:", err)
		os.Exit(1)
	}
	m := model.Tiny()
	engine, err := core.New(core.Config{Model: m, Ranks: *ranks, Policy: policy, TrackHistory: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpsim:", err)
		os.Exit(1)
	}
	gen := workload.NewGenerator(*seed)
	conv := gen.Chat(*seqs, *turns, 24, 40, 2, 6, *decode)
	rng := rand.New(rand.NewSource(*seed + 1))
	ids := make([]int, *seqs)
	for i := range ids {
		ids[i] = i
	}

	fmt.Printf("cpsim: %d ranks, %d sequences, %d turns, policy %s, model %s\n\n",
		*ranks, *seqs, *turns, policy.Name(), m.Name)

	worst := 0.0
	for turnIdx, turn := range conv.Turns {
		total := 0
		for _, l := range turn.NewTokens {
			total += l
		}
		pBefore := make([]int, len(ids))
		for i, id := range ids {
			pBefore[i] = engine.SeqLen(id)
		}
		req := &core.PrefillRequest{
			SeqIDs: ids, Lens: turn.NewTokens,
			Q: tensor.RandN(rng, total, m.NumHeads, m.HeadDim),
			K: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
			V: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
		}
		res, err := engine.Prefill(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpsim:", err)
			os.Exit(1)
		}
		dev := 0.0
		off := 0
		for i, id := range ids {
			ref, err := engine.Reference(id, req.Q.SliceTokens(off, off+turn.NewTokens[i]), pBefore[i])
			if err != nil {
				fmt.Fprintln(os.Stderr, "cpsim:", err)
				os.Exit(1)
			}
			if d := tensor.MaxAbsDiff(ref, res.Output.SliceTokens(off, off+turn.NewTokens[i])); d > dev {
				dev = d
			}
			off += turn.NewTokens[i]
		}
		if dev > worst {
			worst = dev
		}
		fmt.Printf("turn %d: prefill T=%-4d P=%-4d variant=%-8v max|Δ|=%.2g\n",
			turnIdx+1, res.T, res.P, res.Variant, dev)

		for s := 0; s < turn.DecodeSteps; s++ {
			dreq := &core.DecodeRequest{
				SeqIDs: ids,
				Q:      tensor.RandN(rng, *seqs, m.NumHeads, m.HeadDim),
				K:      tensor.RandN(rng, *seqs, m.NumKV, m.HeadDim),
				V:      tensor.RandN(rng, *seqs, m.NumKV, m.HeadDim),
			}
			prev := make([]int, len(ids))
			for i, id := range ids {
				prev[i] = engine.SeqLen(id)
			}
			dres, err := engine.Decode(dreq)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cpsim:", err)
				os.Exit(1)
			}
			for i, id := range ids {
				ref, err := engine.Reference(id, dreq.Q.SliceTokens(i, i+1), prev[i])
				if err != nil {
					fmt.Fprintln(os.Stderr, "cpsim:", err)
					os.Exit(1)
				}
				if d := tensor.MaxAbsDiff(ref, dres.Output.SliceTokens(i, i+1)); d > worst {
					worst = d
				}
			}
		}
		if turn.DecodeSteps > 0 {
			fmt.Printf("         %d decode steps verified\n", turn.DecodeSteps)
		}
	}

	fmt.Printf("\nworst deviation across run: %.3g (lossless within float32 tolerance)\n\n", worst)
	st := engine.CommStats()
	fmt.Println("-- communication (counted on the simulated transport) --")
	for _, kind := range []comm.Kind{comm.KindSendRecv, comm.KindAll2All, comm.KindAllGather} {
		fmt.Printf("%-10s %8d msgs  %12.0f bytes\n", kind, st.Messages[kind], st.Bytes[kind])
	}
	fmt.Println("\n-- per-rank KV cache tokens (balance) --")
	for r, n := range engine.RankCacheTokens() {
		fmt.Printf("rank %d: %d\n", r, n)
	}
	fmt.Println("\n-- engine trace --")
	fmt.Print(engine.Trace().String())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if strings.HasSuffix(*traceOut, ".json") {
			err = engine.Trace().WriteChromeTrace(f)
		} else {
			err = engine.Trace().WriteJSONL(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote span trace to %s\n", *traceOut)
	}
}
