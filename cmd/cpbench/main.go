// Command cpbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	cpbench -list
//	cpbench -exp table4
//	cpbench -exp all
//	cpbench -prefix-json BENCH_prefix.json
//	cpbench -kernel-json BENCH_kernel.json
//
// Each experiment prints the same rows/series the paper reports, with the
// paper's measured values alongside the model's predictions where the paper
// publishes numbers. -prefix-json instead measures cold-vs-warm prefill
// TTFT on the simulated cluster (prefix KV reuse at 0/50/90% hit rates plus
// the pass-KV/pass-Q/auto comparison) and writes the results as JSON, so
// the perf trajectory stays machine-readable across PRs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	prefixJSON := flag.String("prefix-json", "", "measure prefix KV-reuse prefill TTFT and write the JSON report to this path")
	kernelJSON := flag.String("kernel-json", "", "measure serial-vs-parallel GQA kernel throughput and write the JSON report to this path")
	forwardJSON := flag.String("forward-json", "", "measure only the forward-pass section (projection/FFN/logits GEMMs + end-to-end prefill) and write it to this path")
	workers := flag.Int("workers", 0, "attention kernel worker-pool width for experiments (0 = GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *kernelJSON != "" {
		if err := runKernelBench(*kernelJSON); err != nil {
			fmt.Fprintln(os.Stderr, "cpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *forwardJSON != "" {
		if err := runForwardJSON(*forwardJSON); err != nil {
			fmt.Fprintln(os.Stderr, "cpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *prefixJSON != "" {
		if err := runPrefixBench(*prefixJSON); err != nil {
			fmt.Fprintln(os.Stderr, "cpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-24s %s\n", id, experiments.Title(id))
		}
		return
	}
	if *exp == "all" {
		tables, err := experiments.RunAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		return
	}
	t, err := experiments.Run(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpbench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
}
