package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/perf"
	"repro/internal/runinfo"
	"repro/internal/transformer"
)

// prefixBenchPoint is one measured prefill configuration.
type prefixBenchPoint struct {
	HitPct     int     `json:"hit_pct"`
	MissTokens int     `json:"miss_tokens"`
	Variant    string  `json:"variant"`
	TTFTMs     float64 `json:"ttft_ms"`
	Speedup    float64 `json:"speedup_vs_cold"`
}

// prefixBenchReport is the machine-readable perf trajectory emitted as
// BENCH_prefix.json, so the prefix-reuse win is trackable across PRs.
type prefixBenchReport struct {
	GeneratedUnix int64              `json:"generated_unix"`
	Runner        runinfo.Info       `json:"runner"`
	Ranks         int                `json:"ranks"`
	PromptTokens  int                `json:"prompt_tokens"`
	BlockTokens   int                `json:"block_tokens"`
	Reps          int                `json:"reps"`
	HitRates      []prefixBenchPoint `json:"hit_rates"` // pass-KV at 0/50/90% hit
	Variants      []prefixBenchPoint `json:"variants"`  // pass-KV/pass-Q/auto at 90% hit
}

// runPrefixBench measures cold-vs-warm prefill TTFT on the simulated cluster
// and writes the report to path.
func runPrefixBench(path string) error {
	const (
		ranks     = 2
		block     = 32
		promptLen = 320
		reps      = 5
	)
	w, err := transformer.NewWeights(transformer.Tiny(31))
	if err != nil {
		return err
	}
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = (i*13 + 7) % w.Cfg.Model.VocabSize
	}

	measure := func(hitPct int, variant perf.Variant) (prefixBenchPoint, error) {
		c, err := transformer.NewCluster(w, ranks)
		if err != nil {
			return prefixBenchPoint{}, err
		}
		hit := promptLen * hitPct / 100 / block * block
		var pre *transformer.PrefixKV
		if hit > 0 {
			for at := 0; at < promptLen; at += block {
				if _, err := c.Prefill(0, prompt[at:at+block], variant); err != nil {
					return prefixBenchPoint{}, err
				}
			}
			if pre, err = c.DetachPrefix(0, hit); err != nil {
				return prefixBenchPoint{}, err
			}
			c.Drop(0)
		}
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			seq := rep + 1
			if pre != nil {
				if err := c.AdoptPrefix(seq, pre); err != nil {
					return prefixBenchPoint{}, err
				}
			}
			start := time.Now()
			for at := hit; at < promptLen; at += block {
				if _, err := c.Prefill(seq, prompt[at:at+block], variant); err != nil {
					return prefixBenchPoint{}, err
				}
			}
			total += time.Since(start)
			c.Drop(seq)
		}
		return prefixBenchPoint{
			HitPct:     hitPct,
			MissTokens: promptLen - hit,
			Variant:    variant.String(),
			TTFTMs:     float64(total.Microseconds()) / 1000 / reps,
		}, nil
	}

	report := prefixBenchReport{
		GeneratedUnix: time.Now().Unix(),
		Runner:        runinfo.Capture(),
		Ranks:         ranks,
		PromptTokens:  promptLen,
		BlockTokens:   block,
		Reps:          reps,
	}
	var coldMs float64
	for _, hitPct := range []int{0, 50, 90} {
		pt, err := measure(hitPct, perf.PassKV)
		if err != nil {
			return err
		}
		if hitPct == 0 {
			coldMs = pt.TTFTMs
		}
		if pt.TTFTMs > 0 {
			pt.Speedup = coldMs / pt.TTFTMs
		}
		report.HitRates = append(report.HitRates, pt)
	}
	for _, v := range []perf.Variant{perf.PassKV, perf.PassQ, perf.Auto} {
		pt, err := measure(90, v)
		if err != nil {
			return err
		}
		if pt.TTFTMs > 0 {
			pt.Speedup = coldMs / pt.TTFTMs
		}
		report.Variants = append(report.Variants, pt)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("prefix-reuse bench: cold %.2f ms", coldMs)
	for _, pt := range report.HitRates[1:] {
		fmt.Printf(", %d%% hit %.2f ms (%.1fx)", pt.HitPct, pt.TTFTMs, pt.Speedup)
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
