package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/simd"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// The forward-pass section measures the non-attention half of the serving
// hot path — the projection, FFN, and output-head GEMMs that PR 6 routed
// through the shared SIMD dot and the row-blocked parallel matmul — plus
// the end-to-end single-rank prefill that exercises all of them together.
// Every stage is measured against a scalar/serial baseline (vector paths
// off, one worker: the seed engine's execution regime) so the recorded
// speedups state exactly what the parallel+SIMD path buys on this machine.

// forwardPoint is one worker-count measurement of a forward-pass stage.
type forwardPoint struct {
	Workers         int     `json:"workers"`
	TokPerSec       float64 `json:"tok_per_sec"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar_serial,omitempty"`
}

// forwardStageReport is one stage's trajectory: the scalar/serial baseline
// and the SIMD-enabled throughput across worker counts.
type forwardStageReport struct {
	Name            string         `json:"name"`
	ScalarSerialTok float64        `json:"scalar_serial_tok_per_sec"`
	Throughput      []forwardPoint `json:"throughput"`
}

// kernelForwardReport is the forward-pass section of BENCH_kernel.json.
type kernelForwardReport struct {
	sectionEnv
	SIMD     string               `json:"simd"` // "avx" when the vector dot is live, else "scalar"
	Layers   int                  `json:"layers"`
	ModelDim int                  `json:"model_dim"`
	FFNDim   int                  `json:"ffn_dim"`
	NumHeads int                  `json:"num_heads"`
	NumKV    int                  `json:"num_kv_heads"`
	HeadDim  int                  `json:"head_dim"`
	Vocab    int                  `json:"vocab"`
	Tokens   int                  `json:"tokens"` // prefill chunk length per measurement
	Reps     int                  `json:"reps"`
	Stages   []forwardStageReport `json:"stages"`
}

// benchMid returns the forward-bench model shape: big enough that the
// per-token GEMMs dominate (D=256, FFN=512) and the SIMD dot runs long
// vectors, small enough to bench in seconds.
func benchMid(seed int64) transformer.Config {
	m := model.Config{
		Name:      "bench-mid",
		Layers:    2,
		ModelDim:  256,
		FFNDim:    512,
		NumHeads:  8,
		NumKV:     4,
		HeadDim:   32,
		Params:    1e6,
		ElemBytes: 2,
		VocabSize: 512,
	}
	return transformer.Config{Model: m, RoPEBase: 10000, NormEps: 1e-5, Seed: seed}
}

// runForwardBench measures the forward-pass stages and fills the section.
func runForwardBench(workerCounts []int) (kernelForwardReport, error) {
	const (
		tokens = 128
		reps   = 3
	)
	cfg := benchMid(29)
	m := cfg.Model
	report := kernelForwardReport{
		sectionEnv: captureEnv(),
		Layers:     m.Layers, ModelDim: m.ModelDim, FFNDim: m.FFNDim,
		NumHeads: m.NumHeads, NumKV: m.NumKV, HeadDim: m.HeadDim,
		Vocab: m.VocabSize, Tokens: tokens, Reps: reps,
	}
	if simd.Available() {
		report.SIMD = "avx"
	} else {
		report.SIMD = "scalar"
	}

	rng := rand.New(rand.NewSource(31))
	wq := tensor.RandMatrix(rng, m.NumHeads*m.HeadDim, m.ModelDim)
	wk := tensor.RandMatrix(rng, m.NumKV*m.HeadDim, m.ModelDim)
	wv := tensor.RandMatrix(rng, m.NumKV*m.HeadDim, m.ModelDim)
	wGate := tensor.RandMatrix(rng, m.FFNDim, m.ModelDim)
	wUp := tensor.RandMatrix(rng, m.FFNDim, m.ModelDim)
	wDown := tensor.RandMatrix(rng, m.ModelDim, m.FFNDim)
	head := tensor.RandMatrix(rng, m.VocabSize, m.ModelDim)
	hidden := make([]float32, tokens*m.ModelDim)
	ffnAct := make([]float32, tokens*m.FFNDim)
	for i := range hidden {
		hidden[i] = float32(rng.NormFloat64())
	}
	for i := range ffnAct {
		ffnAct[i] = float32(rng.NormFloat64())
	}
	qOut := make([]float32, tokens*m.NumHeads*m.HeadDim)
	kvOut := make([]float32, tokens*m.NumKV*m.HeadDim)
	ffnOut := make([]float32, tokens*m.FFNDim)
	downOut := make([]float32, tokens*m.ModelDim)
	logitsOut := make([]float32, tokens*m.VocabSize)

	// Each stage is the exact GEMM shapes one layer (or the head) runs over a
	// token block, through the same ApplyRowsInto hot path the engine uses.
	stages := []struct {
		name string
		fn   func() error
	}{
		{"projections", func() error {
			wq.ApplyRowsInto(qOut, hidden, tokens)
			wk.ApplyRowsInto(kvOut, hidden, tokens)
			wv.ApplyRowsInto(kvOut, hidden, tokens)
			return nil
		}},
		{"ffn", func() error {
			wGate.ApplyRowsInto(ffnOut, hidden, tokens)
			wUp.ApplyRowsInto(ffnOut, hidden, tokens)
			wDown.ApplyRowsInto(downOut, ffnAct, tokens)
			return nil
		}},
		{"logits", func() error {
			head.ApplyRowsInto(logitsOut, hidden, tokens)
			return nil
		}},
		{"end_to_end", nil}, // measured through the cluster below
	}

	timeStage := func(fn func() error) (float64, error) {
		if err := fn(); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return float64(tokens) * reps / time.Since(start).Seconds(), nil
	}

	// End-to-end: cold single-rank prefill of a `tokens`-long prompt through
	// the full cluster (projections, ring attention, FFN, logits). A fresh
	// session per run keeps every measurement a cold prefill.
	weights, err := transformer.NewWeights(cfg)
	if err != nil {
		return report, err
	}
	prompt := make([]int, tokens)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % m.VocabSize
	}
	nextSession := 0
	e2e := func() error {
		c, err := transformer.NewCluster(weights, 1)
		if err != nil {
			return err
		}
		if _, err := c.Prefill(nextSession, prompt, perf.PassKV); err != nil {
			return err
		}
		nextSession++
		return nil
	}

	for _, st := range stages {
		fn := st.fn
		if fn == nil {
			fn = e2e
		}
		sr := forwardStageReport{Name: st.name}
		// Scalar/serial baseline: vector dot off, pool width 1 — the seed
		// engine's execution regime for these GEMMs.
		prevSIMD := simd.SetEnabled(false)
		prevW := parallel.SetWorkers(1)
		sr.ScalarSerialTok, err = timeStage(fn)
		simd.SetEnabled(prevSIMD)
		parallel.SetWorkers(prevW)
		if err != nil {
			return report, err
		}
		for _, w := range workerCounts {
			old := parallel.SetWorkers(w)
			tok, err := timeStage(fn)
			parallel.SetWorkers(old)
			if err != nil {
				return report, err
			}
			sr.Throughput = append(sr.Throughput, forwardPoint{
				Workers: w, TokPerSec: tok, SpeedupVsScalar: tok / sr.ScalarSerialTok,
			})
		}
		report.Stages = append(report.Stages, sr)
	}
	return report, nil
}

// validForward rejects a section with NaN or non-positive throughput — the
// CI bench smoke gate.
func validForward(r kernelForwardReport) error {
	check := func(stage string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("forward bench: stage %s throughput %v", stage, v)
		}
		return nil
	}
	if len(r.Stages) == 0 {
		return fmt.Errorf("forward bench: no stages recorded")
	}
	for _, st := range r.Stages {
		if err := check(st.Name+"/scalar_serial", st.ScalarSerialTok); err != nil {
			return err
		}
		if len(st.Throughput) == 0 {
			return fmt.Errorf("forward bench: stage %s has no worker points", st.Name)
		}
		for _, p := range st.Throughput {
			if err := check(fmt.Sprintf("%s/w%d", st.Name, p.Workers), p.TokPerSec); err != nil {
				return err
			}
		}
	}
	return nil
}

// runForwardJSON runs only the forward-pass section and writes it to path —
// the fast bench-smoke entry point.
func runForwardJSON(path string) error {
	report, err := runForwardBench([]int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	if err := validForward(report); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	e2e := report.Stages[len(report.Stages)-1]
	last := e2e.Throughput[len(e2e.Throughput)-1]
	fmt.Printf("forward bench (%s): e2e scalar/serial %.0f tok/s; parallel+simd %.0f tok/s at %d workers (%.1fx)\n",
		report.SIMD, e2e.ScalarSerialTok, last.TokPerSec, last.Workers, last.SpeedupVsScalar)
	fmt.Printf("wrote %s\n", path)
	return nil
}
