package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/attention"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/runinfo"
	"repro/internal/tensor"
	"repro/internal/transformer"
)

// sectionEnv pins the machine context a section was measured under — core
// count, scheduler width, kernel worker-pool width, toolchain. Embedded per
// section (not just at the top level) so a report stitched together across
// machines or reruns can never misattribute a throughput number. Sourced
// from runinfo so every BENCH emitter reports the same runner block.
type sectionEnv struct {
	runinfo.Info
}

func captureEnv() sectionEnv {
	return sectionEnv{Info: runinfo.Capture()}
}

// kernelWorkerPoint is one worker-count measurement of a kernel workload.
type kernelWorkerPoint struct {
	Workers       int     `json:"workers"`
	TokPerSec     float64 `json:"tok_per_sec"`
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`
}

// kernelPrefillReport is the long-context single-rank GQA prefill section:
// the seed scalar kernel versus the tiled interval-mask kernel across
// worker counts.
type kernelPrefillReport struct {
	sectionEnv
	QTokens      int                 `json:"q_tokens"`
	CachedTokens int                 `json:"cached_tokens"`
	NumHeads     int                 `json:"num_heads"`
	NumKV        int                 `json:"num_kv_heads"`
	HeadDim      int                 `json:"head_dim"`
	Reps         int                 `json:"reps"`
	SeedTokSec   float64             `json:"seed_tok_per_sec"`
	Kernel       []kernelWorkerPoint `json:"kernel"`
}

// kernelDecodeReport is the batched-decode section: decoded tokens/s of a
// fused 16-session DecodeBatch sweep on a 2-rank cluster across worker
// counts (the whole serving stack in the loop: ring pass-Q, assembled-KV
// mirrors, merge, FFN).
type kernelDecodeReport struct {
	sectionEnv
	Sessions   int                 `json:"sessions"`
	Ranks      int                 `json:"ranks"`
	ContextLen int                 `json:"context_len"`
	Steps      int                 `json:"steps"`
	Throughput []kernelWorkerPoint `json:"throughput"`
}

// kernelBenchReport is the machine-readable kernel perf trajectory emitted
// as BENCH_kernel.json.
type kernelBenchReport struct {
	GeneratedUnix int64               `json:"generated_unix"`
	Runner        runinfo.Info        `json:"runner"`
	Prefill       kernelPrefillReport `json:"prefill"`
	Decode        kernelDecodeReport  `json:"decode"`
	Forward       kernelForwardReport `json:"forward"`
}

// runKernelBench measures the attention hot path and writes BENCH_kernel.json.
func runKernelBench(path string) error {
	report := kernelBenchReport{
		GeneratedUnix: time.Now().Unix(),
		Runner:        runinfo.Capture(),
	}
	workerCounts := []int{1, 2, 4, 8}

	// Long-context single-rank GQA prefill: one chunk of new queries
	// attending to a long cached context at a Llama-like GQA geometry.
	const (
		qTokens = 128
		cached  = 7936
		nh, nkv = 32, 4
		dh      = 64
		reps    = 3
	)
	rng := rand.New(rand.NewSource(17))
	q := tensor.RandN(rng, qTokens, nh, dh)
	k := tensor.RandN(rng, cached+qTokens, nkv, dh)
	v := tensor.RandN(rng, cached+qTokens, nkv, dh)
	mask := attention.PartialCausal(qTokens, cached)

	timeIt := func(fn func() error) (float64, error) {
		// One warm-up then reps timed runs.
		if err := fn(); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return float64(qTokens) * reps / time.Since(start).Seconds(), nil
	}

	seedTok, err := timeIt(func() error {
		_, err := attention.Reference(q, k, v, mask)
		return err
	})
	if err != nil {
		return err
	}
	report.Prefill = kernelPrefillReport{
		sectionEnv: captureEnv(),
		QTokens:    qTokens, CachedTokens: cached,
		NumHeads: nh, NumKV: nkv, HeadDim: dh, Reps: reps,
		SeedTokSec: seedTok,
	}
	for _, w := range workerCounts {
		old := parallel.SetWorkers(w)
		tok, err := timeIt(func() error {
			_, err := attention.GQA(q, k, v, mask)
			return err
		})
		parallel.SetWorkers(old)
		if err != nil {
			return err
		}
		report.Prefill.Kernel = append(report.Prefill.Kernel, kernelWorkerPoint{
			Workers: w, TokPerSec: tok, SpeedupVsSeed: tok / seedTok,
		})
	}

	// 16-session batched decode through the full cluster: prefill every
	// session to a shared context length, then time fused DecodeBatch steps.
	const (
		sessions = 16
		ranks    = 2
		ctxLen   = 256
		steps    = 24
	)
	w8, err := transformer.NewWeights(transformer.Tiny(23))
	if err != nil {
		return err
	}
	report.Decode = kernelDecodeReport{sectionEnv: captureEnv(),
		Sessions: sessions, Ranks: ranks, ContextLen: ctxLen, Steps: steps}
	for _, w := range workerCounts {
		old := parallel.SetWorkers(w)
		stepsSec, err := runDecodeBench(w8, sessions, ranks, ctxLen, steps)
		parallel.SetWorkers(old)
		if err != nil {
			return err
		}
		report.Decode.Throughput = append(report.Decode.Throughput, kernelWorkerPoint{
			Workers: w, TokPerSec: stepsSec * sessions, // one token per session per step
		})
	}

	// The forward-pass section: projection/FFN/logits GEMMs and end-to-end
	// single-rank prefill, each against the scalar/serial baseline.
	report.Forward, err = runForwardBench(workerCounts)
	if err != nil {
		return err
	}
	if err := validForward(report.Forward); err != nil {
		return err
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	best := report.Prefill.Kernel[len(report.Prefill.Kernel)-1]
	fmt.Printf("kernel bench: seed %.0f tok/s; tiled kernel %.0f tok/s at %d workers (%.1fx)\n",
		seedTok, best.TokPerSec, best.Workers, best.SpeedupVsSeed)
	e2e := report.Forward.Stages[len(report.Forward.Stages)-1]
	last := e2e.Throughput[len(e2e.Throughput)-1]
	fmt.Printf("forward bench (%s): e2e scalar/serial %.0f tok/s; parallel+simd %.0f tok/s (%.1fx)\n",
		report.Forward.SIMD, e2e.ScalarSerialTok, last.TokPerSec, last.SpeedupVsScalar)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runDecodeBench prefills `sessions` sequences to ctxLen and times fused
// decode steps for all of them.
func runDecodeBench(w *transformer.Weights, sessions, ranks, ctxLen, steps int) (float64, error) {
	c, err := transformer.NewCluster(w, ranks)
	if err != nil {
		return 0, err
	}
	vocab := w.Cfg.Model.VocabSize
	seqs := make([]int, sessions)
	toks := make([]int, sessions)
	prompt := make([]int, ctxLen)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % vocab
	}
	for sid := 0; sid < sessions; sid++ {
		seqs[sid] = sid
		toks[sid] = (sid * 11) % vocab
		if _, err := c.Prefill(sid, prompt, perf.PassKV); err != nil {
			return 0, err
		}
	}
	// Warm-up step so decode mirrors exist before timing.
	if _, err := c.DecodeBatch(seqs, toks); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := c.DecodeBatch(seqs, toks); err != nil {
			return 0, err
		}
	}
	return float64(steps) / time.Since(start).Seconds(), nil
}
