// Command cpchaos is the deterministic chaos soak driver: it spawns a
// 3-rank distributed cluster (each rank this binary re-executed in worker
// mode) whose every worker executes the same seeded fault schedule — a slow
// link, a corrupted frame, a network partition, and a rank crash, each
// fired at an exact logical send step — drives a serial generate workload
// through a recovery-armed coordinator, and asserts the robustness
// contract end to end:
//
//   - every session's decode stream is bit-identical to a never-faulted
//     in-process reference run of the same workload;
//   - the corrupted frame was provably detected (wire integrity rejected
//     counter > 0) and contained as a link failure;
//   - recovery rebuilt the cluster at least once and stayed within its
//     budget;
//   - re-running the same seed reproduces identical fault counts, recovery
//     counts, and token streams (chaos runs are replayable);
//   - shutdown is clean: workers exit 0, goroutines return to baseline, and
//     no span producer keeps running after traffic stops.
//
// Run:
//
//	go run ./cmd/cpchaos            # default seed, two runs, ~20s
//	go run ./cmd/cpchaos -seed 7 -metrics-out soak.prom
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/transformer"
)

const (
	workerEnv = "CPCHAOS_RANK"
	schedEnv  = "CPCHAOS_SCHED"
	seedEnv   = "CPCHAOS_SEED"
	ranks     = 3
)

func main() {
	if env := os.Getenv(workerEnv); env != "" {
		runWorker(env)
		return
	}
	if err := runDriver(); err != nil {
		fmt.Fprintf(os.Stderr, "cpchaos: %v\n", err)
		os.Exit(1)
	}
}

// runWorker is the child-process body: one CP rank with the shared fault
// schedule armed on its transport. Every worker receives the full schedule
// and executes the faults it hosts (send-side for link faults, the acting
// rank for crashes and partitions); -rejoin semantics let it survive the
// epoch rebuilds its own faults trigger.
func runWorker(env string) {
	rank, err := strconv.Atoi(env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpchaos: bad %s=%q\n", workerEnv, env)
		os.Exit(1)
	}
	seed, err := strconv.ParseInt(os.Getenv(seedEnv), 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpchaos: bad %s=%q\n", seedEnv, os.Getenv(seedEnv))
		os.Exit(1)
	}
	sched, err := chaos.Parse(os.Getenv(schedEnv), ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpchaos: %v\n", err)
		os.Exit(1)
	}
	// One injector for the process lifetime: its step clocks persist across
	// rejoin epochs, so faults scheduled past a rebuild still fire on time.
	inj := chaos.NewInjector(sched)
	transformer.WorkerMain(transformer.WorkerConfig{
		Transformer:       transformer.Tiny(seed),
		Rank:              rank,
		World:             ranks,
		Listen:            "127.0.0.1:0",
		RendezvousTimeout: 30 * time.Second,
		Rejoin:            true,
		MaxRejoins:        32,
		WrapTransport:     inj.Wrap,
	})
}

// summary is one soak run's observable outcome — everything that must be
// identical when the same seed runs again.
type summary struct {
	streams    [][]int
	rebuilds   int64
	attempts   int64
	integrity  int64 // frames rejected by the CRC check, cluster-wide
	chaosByKey map[string]int64
}

func runDriver() error {
	seed := flag.Int64("seed", 1, "fault-schedule and weight seed; same seed = same faults, same streams")
	phase := flag.Int64("phase", 64, "logical-step spacing between scheduled faults")
	sessions := flag.Int("sessions", 6, "sequential generate sessions per run")
	promptLen := flag.Int("prompt", 48, "prompt tokens per session")
	maxTokens := flag.Int("max-tokens", 16, "decode steps per session")
	runs := flag.Int("runs", 2, "soak repetitions (>= 2 proves seed replayability)")
	maxRecoveries := flag.Int("max-recoveries", 8, "coordinator recovery budget per run")
	metricsOut := flag.String("metrics-out", "", "dump the final run's Prometheus exposition to this file")
	flag.Parse()

	sched := chaos.Soak(uint64(*seed), ranks, *phase)
	fmt.Printf("cpchaos: seed %d schedule: %s\n", *seed, sched)

	cfg := transformer.Tiny(*seed)
	refStreams, err := referenceStreams(cfg, *sessions, *promptLen, *maxTokens)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	fmt.Printf("cpchaos: reference streams computed in-process (%d sessions x %d tokens)\n", *sessions, *maxTokens)

	baseline := runtime.NumGoroutine()
	var prev *summary
	for run := 1; run <= *runs; run++ {
		out := ""
		if run == *runs {
			out = *metricsOut
		}
		sum, err := soakOnce(cfg, sched, *seed, *sessions, *promptLen, *maxTokens, *maxRecoveries, out)
		if err != nil {
			return fmt.Errorf("run %d: %w", run, err)
		}
		// Bit-identity against the never-faulted reference: recovery replay
		// plus chaos must be invisible in the decode streams.
		for i, want := range refStreams {
			if !equalInts(sum.streams[i], want) {
				return fmt.Errorf("run %d: session %d stream diverged from reference:\n  chaos: %v\n  ref:   %v", run, i+1, sum.streams[i], want)
			}
		}
		// The schedule must actually have bitten: corruption detected by the
		// CRC trailer, at least one rebuild, all within budget, and every
		// scheduled fault kind fired.
		if sum.integrity < 1 {
			return fmt.Errorf("run %d: corrupted frame was never detected (integrity rejected = %d)", run, sum.integrity)
		}
		if sum.rebuilds < 1 {
			return fmt.Errorf("run %d: chaos never forced a rebuild", run)
		}
		if sum.attempts > int64(*maxRecoveries) {
			return fmt.Errorf("run %d: %d recovery attempts exceed budget %d", run, sum.attempts, *maxRecoveries)
		}
		for _, f := range sched.Faults {
			if sum.chaosByKey[string(f.Kind)] < 1 {
				return fmt.Errorf("run %d: scheduled %s fault never fired (counts %v)", run, f.Kind, sum.chaosByKey)
			}
		}
		// Seed replayability: every run must match the first exactly.
		if prev != nil {
			for i := range prev.streams {
				if !equalInts(sum.streams[i], prev.streams[i]) {
					return fmt.Errorf("run %d: session %d stream differs from run %d under the same seed", run, i+1, run-1)
				}
			}
			if sum.rebuilds != prev.rebuilds || sum.attempts != prev.attempts {
				return fmt.Errorf("run %d: recovery counts differ under the same seed: %d/%d vs %d/%d",
					run, sum.rebuilds, sum.attempts, prev.rebuilds, prev.attempts)
			}
			for k, v := range prev.chaosByKey {
				if sum.chaosByKey[k] != v {
					return fmt.Errorf("run %d: %s fault count %d differs from run %d's %d", run, k, sum.chaosByKey[k], run-1, v)
				}
			}
		}
		prev = sum
		if err := settleGoroutines(baseline); err != nil {
			return fmt.Errorf("run %d: %w", run, err)
		}
		fmt.Printf("cpchaos: run %d ok — %d sessions bit-identical, %d rebuilds (%d attempts), %d corrupt frames rejected, faults %v\n",
			run, *sessions, sum.rebuilds, sum.attempts, sum.integrity, sum.chaosByKey)
	}
	fmt.Printf("cpchaos: OK — %d runs, seed %d replayed identically, clean shutdown each time\n", *runs, *seed)
	return nil
}

// referenceStreams runs the identical workload on a never-faulted
// in-process cluster and returns each session's decode stream.
func referenceStreams(cfg transformer.Config, sessions, promptLen, maxTokens int) ([][]int, error) {
	srv, err := server.New(server.Config{Transformer: cfg, Ranks: ranks})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	return driveSessions(srv, cfg, sessions, promptLen, maxTokens)
}

// driveSessions runs the deterministic serial workload: sessions generate
// one after another, so every ring send lands at the same logical step on
// every run — the property that makes the fault schedule replayable.
func driveSessions(srv *server.Server, cfg transformer.Config, sessions, promptLen, maxTokens int) ([][]int, error) {
	streams := make([][]int, sessions)
	for s := 0; s < sessions; s++ {
		prompt := make([]int, promptLen)
		for i := range prompt {
			prompt[i] = (i*7 + s*13 + 5) % cfg.Model.VocabSize
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		res, err := srv.Scheduler().Generate(ctx, s+1, prompt, maxTokens)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", s+1, err)
		}
		streams[s] = res.Tokens
	}
	return streams, nil
}

// soakOnce spawns the worker fleet, runs the workload through a
// recovery-armed distributed coordinator, collects the run summary, and
// tears everything down, insisting on clean worker exits.
func soakOnce(cfg transformer.Config, sched *chaos.Schedule, seed int64, sessions, promptLen, maxTokens, maxRecoveries int, metricsOut string) (*summary, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	type workerProc struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
	}
	workers := make([]*workerProc, ranks)
	addrs := make([]string, ranks)
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.cmd.Process.Kill()
				w.cmd.Wait()
			}
		}
	}()
	for i := 0; i < ranks; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", workerEnv, i),
			fmt.Sprintf("%s=%s", schedEnv, sched.String()),
			fmt.Sprintf("%s=%d", seedEnv, seed),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("starting worker %d: %w", i, err)
		}
		workers[i] = &workerProc{cmd: cmd, stdin: stdin}
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "CPRANK_ADDR ") {
				addrs[i] = strings.TrimPrefix(sc.Text(), "CPRANK_ADDR ")
				break
			}
		}
		if addrs[i] == "" {
			return nil, fmt.Errorf("worker %d exited before reporting its address", i)
		}
	}
	list := strings.Join(addrs, ",") + "\n"
	for _, w := range workers {
		if _, err := io.WriteString(w.stdin, list); err != nil {
			return nil, err
		}
	}

	srv, err := server.New(server.Config{
		Transformer:   cfg,
		RankAddrs:     addrs,
		DialTimeout:   30 * time.Second,
		Recover:       true,
		MaxRecoveries: maxRecoveries,
	})
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			srv.Close()
		}
	}()

	sum := &summary{chaosByKey: make(map[string]int64)}
	sum.streams, err = driveSessions(srv, cfg, sessions, promptLen, maxTokens)
	if err != nil {
		return nil, err
	}

	rec := srv.Scheduler().RecoveryStats()
	sum.rebuilds, sum.attempts = rec.Rebuilds, rec.Attempts
	var tel transformer.Telemetry
	var telErr error
	srv.Scheduler().WithCluster(func(c *transformer.Cluster) { tel, telErr = c.Telemetry() })
	if telErr != nil {
		return nil, fmt.Errorf("telemetry: %w", telErr)
	}
	sum.integrity = tel.IntegrityRejected
	for i, kind := range tel.ChaosKinds {
		sum.chaosByKey[kind] = tel.ChaosCounts[i]
	}

	// Span-leak check: traffic has stopped, so a second trace sync must
	// surface zero new spans — anything still producing is a leak.
	if rec := srv.Recorder(); rec != nil {
		if err := srv.WriteTrace(io.Discard, false); err != nil {
			return nil, fmt.Errorf("trace sync: %w", err)
		}
		before := rec.SpanCount()
		if err := srv.WriteTrace(io.Discard, false); err != nil {
			return nil, fmt.Errorf("trace re-sync: %w", err)
		}
		if after := rec.SpanCount(); after != before {
			return nil, fmt.Errorf("span leak: %d new spans surfaced after traffic stopped", after-before)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return nil, err
		}
		if err := srv.Recorder().WriteProm(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		log.Printf("cpchaos: wrote metrics to %s", metricsOut)
	}

	// Orderly teardown: Close sends the shutdown command, and every worker —
	// crashes, rejoins and all — must exit cleanly.
	srv.Close()
	closed = true
	for i, w := range workers {
		if err := w.cmd.Wait(); err != nil {
			return nil, fmt.Errorf("worker %d exit: %w", i, err)
		}
	}
	workers = nil
	return sum, nil
}

// settleGoroutines waits (bounded) for the goroutine count to return to the
// pre-run baseline; a stable excess is a leaked goroutine.
func settleGoroutines(baseline int) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d alive vs baseline %d", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
